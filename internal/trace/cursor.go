// Cursor: deterministic schedule replay. A cursor walks the globally
// ordered event list of a recorded trace; during replay every emission
// point in the kernel gates on it (and GIL acquisition pre-gates on it),
// which forces the recorded GIL handoff sequence — and with it the whole
// event order — onto the re-run.
//
// The cursor is one implementation of ScheduleDriver, the pluggable
// arbiter the kernel consults at every schedulable operation. Replay
// (this file) answers "whose turn is it?" from a recording; the model
// checker (internal/check) answers it from a search strategy.

package trace

import (
	"fmt"
	"sync"
	"time"
)

// ScheduleDriver arbitrates the schedule of a kernel run. The kernel
// consults it at every schedulable operation: AwaitTurn pre-gates GIL
// acquisition (the handoff choice point), and Next observes — and may
// sequence — every emitted event (GIL transfer, fork phases, pipe/queue/
// semaphore/mutex operations, yields, parks, exits).
//
// Implementations must be safe for concurrent use from every thread
// goroutine of the kernel.
type ScheduleDriver interface {
	// AwaitTurn blocks the (pid, tid) thread until the driver schedules it
	// to perform op, or until cancel fires or the driver disengages.
	AwaitTurn(pid, tid uint32, op Op, cancel <-chan struct{})
	// Next reports the emission of op by (pid, tid) on object obj with
	// detail aux. A driver that dictates sequence numbers (replay) returns
	// (seq, true); ok false means the emitter falls back to free-running
	// sequence numbers. abort, when non-nil, lets a blocking driver bail
	// out (thread killed, tracing stopped).
	Next(pid, tid uint32, op Op, obj uint64, aux int64, abort func() bool) (uint64, bool)
}

// replayPatience bounds how long a thread waits for its recorded turn
// before the cursor declares divergence and disengages, letting the run
// continue free (with the divergence reported). A variable so tests can
// shrink it to pin divergence behavior without multi-second waits.
var replayPatience = 10 * time.Second

const replayPoll = 2 * time.Millisecond

// Cursor replays a recorded event order. It implements ScheduleDriver.
type Cursor struct {
	mu         sync.Mutex
	events     []Event
	pos        int
	wait       chan struct{} // closed and replaced on every advance
	diverged   bool
	divergeMsg string
}

var _ ScheduleDriver = (*Cursor)(nil)

// NewCursor returns a cursor over events, which must be in global
// sequence order (Trace.Events).
func NewCursor(events []Event) *Cursor {
	return &Cursor{events: events, wait: make(chan struct{})}
}

// Active reports whether the cursor is still forcing the schedule.
func (c *Cursor) Active() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !c.diverged && c.pos < len(c.events)
}

// Diverged reports whether replay left the recorded schedule, and why.
func (c *Cursor) Diverged() (bool, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diverged, c.divergeMsg
}

// Replayed returns how many events have been consumed.
func (c *Cursor) Replayed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pos
}

func (c *Cursor) divergeLocked(msg string) {
	if !c.diverged {
		c.diverged = true
		c.divergeMsg = msg
	}
	ch := c.wait
	c.wait = make(chan struct{})
	close(ch)
}

// AwaitTurn blocks until the cursor head is the (pid, tid, op) event —
// without consuming it — or until the cursor is exhausted/diverged or
// cancel fires. The GIL acquire path pre-gates here so a thread never
// even contends for the lock before its recorded turn.
func (c *Cursor) AwaitTurn(pid, tid uint32, op Op, cancel <-chan struct{}) {
	deadline := time.Now().Add(replayPatience)
	for {
		c.mu.Lock()
		if c.diverged || c.pos >= len(c.events) {
			c.mu.Unlock()
			return
		}
		h := c.events[c.pos]
		if h.PID == pid && h.TID == tid && h.Op == op {
			c.mu.Unlock()
			return
		}
		ch := c.wait
		c.mu.Unlock()
		select {
		case <-ch:
		case <-cancel:
			return
		case <-time.After(replayPoll):
			if time.Now().After(deadline) {
				c.mu.Lock()
				c.divergeLocked(fmt.Sprintf(
					"replay diverged at event %d: got (pid %d tid %d %s) awaiting its turn, want (pid %d tid %d %s) at seq %d",
					c.pos, pid, tid, op, h.PID, h.TID, h.Op, h.Seq))
				c.mu.Unlock()
				return
			}
		}
	}
}

// Next consumes the cursor head for the (pid, tid, op) emission and
// returns the recorded sequence number. It blocks until it is this
// event's turn. ok is false when the cursor no longer forces the schedule
// (exhausted, diverged, or abort reported true) — the caller then falls
// back to free-running sequence numbers. obj and aux describe the event
// being emitted; the cursor matches only on (pid, tid, op), since object
// identity is itself deterministic under a forced schedule.
func (c *Cursor) Next(pid, tid uint32, op Op, obj uint64, aux int64, abort func() bool) (uint64, bool) {
	deadline := time.Now().Add(replayPatience)
	for {
		c.mu.Lock()
		if c.diverged || c.pos >= len(c.events) {
			c.mu.Unlock()
			return 0, false
		}
		h := c.events[c.pos]
		if h.PID == pid && h.TID == tid {
			if h.Op != op {
				c.divergeLocked(fmt.Sprintf(
					"replay diverged at event %d: got (pid %d tid %d %s), want (pid %d tid %d %s) at seq %d",
					c.pos, pid, tid, op, h.PID, h.TID, h.Op, h.Seq))
				c.mu.Unlock()
				return 0, false
			}
			c.pos++
			ch := c.wait
			c.wait = make(chan struct{})
			c.mu.Unlock()
			close(ch)
			return h.Seq, true
		}
		ch := c.wait
		c.mu.Unlock()
		select {
		case <-ch:
		case <-time.After(replayPoll):
			if abort != nil && abort() {
				return 0, false
			}
			if time.Now().After(deadline) {
				c.mu.Lock()
				c.divergeLocked(fmt.Sprintf(
					"replay diverged at event %d: got (pid %d tid %d %s) stuck emitting, want (pid %d tid %d %s) at seq %d",
					c.pos, pid, tid, op, h.PID, h.TID, h.Op, h.Seq))
				c.mu.Unlock()
				return 0, false
			}
		}
	}
}
