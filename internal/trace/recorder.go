// Recorder: the process-spanning collection side of the trace subsystem.
// It owns the global sequence counter, the file-string table, and the
// flushed chunks; rings are per process and drained into it.

package trace

import (
	"sort"
	"sync"
	"sync/atomic"
)

// MaxEvents caps recorder memory: past this many events recording
// disables itself and the trace is marked truncated. The cap is far above
// anything the tests or benchmarks produce.
const MaxEvents = 8 << 20

// Chunk is one drained ring's worth of events. A chunk always belongs to
// exactly one process (rings are per process); the flush in fork handler
// phase A additionally guarantees every parent event recorded before a
// fork appears in an earlier chunk than any event of the child.
type Chunk struct {
	PID    uint32
	Events []Event
}

// Recorder accumulates trace events from every process of a kernel.
type Recorder struct {
	seq     atomic.Uint64
	enabled atomic.Bool
	count   atomic.Int64

	// Meta recorded into the file header: record and replay must agree on
	// the checkinterval for the schedule to line up.
	CheckEvery int
	Seed       int64
	// ChaosSeed and ChaosRates, when ChaosRates is non-nil, describe the
	// fault injector the recorded run had installed; they are written as
	// the trace's 'C' section so replay can rebuild the injector and
	// re-fire the same faults.
	ChaosSeed  int64
	ChaosRates []float64

	mu        sync.Mutex
	chunks    []Chunk
	files     []string
	fileIDs   map[string]uint16
	truncated bool
}

// NewRecorder returns a recorder with recording off; call Start.
func NewRecorder() *Recorder {
	r := &Recorder{fileIDs: make(map[string]uint16)}
	r.files = append(r.files, "") // file id 0 = unknown
	r.fileIDs[""] = 0
	return r
}

// Start enables recording. The sequence counter continues across
// stop/start cycles.
func (r *Recorder) Start() { r.enabled.Store(true) }

// Stop disables recording.
func (r *Recorder) Stop() { r.enabled.Store(false) }

// Enabled reports whether events are being recorded.
func (r *Recorder) Enabled() bool { return r.enabled.Load() }

// NextSeq allocates the next global sequence number (first event is 1).
func (r *Recorder) NextSeq() uint64 { return r.seq.Add(1) }

// CurrentSeq returns the most recently allocated sequence number.
func (r *Recorder) CurrentSeq() uint64 { return r.seq.Load() }

// ForceSeq raises the sequence counter to at least s (replay runs stamp
// events with the recorded sequence numbers).
func (r *Recorder) ForceSeq(s uint64) {
	for {
		cur := r.seq.Load()
		if cur >= s || r.seq.CompareAndSwap(cur, s) {
			return
		}
	}
}

// NoteEmit counts an emission toward the memory cap; it reports false
// once the cap is hit (recording has been disabled).
func (r *Recorder) NoteEmit() bool {
	if r.count.Add(1) > MaxEvents {
		r.enabled.Store(false)
		r.mu.Lock()
		r.truncated = true
		r.mu.Unlock()
		return false
	}
	return true
}

// Truncated reports whether the event cap disabled recording.
func (r *Recorder) Truncated() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.truncated
}

// FileID interns a source file name into the trace's string table.
func (r *Recorder) FileID(name string) uint16 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.fileIDs[name]; ok {
		return id
	}
	if len(r.files) > 0xFFFF {
		return 0
	}
	id := uint16(len(r.files))
	r.files = append(r.files, name)
	r.fileIDs[name] = id
	return id
}

// Flush drains a process ring into a fresh chunk.
func (r *Recorder) Flush(pid uint32, ring *Ring) {
	if ring == nil {
		return
	}
	var evs []Event
	ring.Drain(func(e Event) { evs = append(evs, e) })
	if len(evs) == 0 {
		return
	}
	r.mu.Lock()
	r.chunks = append(r.chunks, Chunk{PID: pid, Events: evs})
	r.mu.Unlock()
}

// Direct records one event straight into the recorder, bypassing the
// per-process rings. It is for native-thread emitters (the debug plane's
// connection fault hooks) that hold no GIL and own no ring; the event is
// assigned the next global sequence number. No-op when disabled.
func (r *Recorder) Direct(e Event) {
	if !r.enabled.Load() || !r.NoteEmit() {
		return
	}
	e.Seq = r.NextSeq()
	r.mu.Lock()
	r.chunks = append(r.chunks, Chunk{PID: e.PID, Events: []Event{e}})
	r.mu.Unlock()
}

// Chunks returns the flushed chunks in flush order.
func (r *Recorder) Chunks() []Chunk {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Chunk, len(r.chunks))
	copy(out, r.chunks)
	return out
}

// Files returns the file-string table (index = file id).
func (r *Recorder) Files() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.files))
	copy(out, r.files)
	return out
}

// Events returns every flushed event ordered by sequence number.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	var out []Event
	for _, c := range r.chunks {
		out = append(out, c.Events...)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
