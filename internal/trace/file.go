// The binary trace file format.
//
//	header:  "PINTTRC1" | u16 version | u16 reserved | u32 checkEvery |
//	         u64 seed
//	then sections, each introduced by a kind byte:
//	  'C'  chaos meta:   u64 seed | u16 count | count × u64 rate-bits
//	  'E'  events chunk: u32 pid | u32 count | count × 40-byte events
//	  'F'  file table:   u32 count | count × (u16 len | bytes)
//	  '.'  end of trace
//
// The 'C' section is present only when the recorded run had a fault
// injector installed: replaying a chaos-perturbed schedule requires
// re-firing the same faults, so the witness must carry the injector's
// seed and per-point rates (`pint -replay` rebuilds the injector from
// them). Chaos-free traces are byte-identical to the pre-chaos format.
//
// Chunks are written ordered by their first event's sequence number, not
// raw flush order: final flushes race at teardown (whichever process
// exits last flushes last), and a canonical order is what makes a
// re-recorded replay byte-identical to its original. The phase-A
// guarantee survives the sort — a parent's pre-fork chunks hold only
// pre-fork sequence numbers, so they still precede every chunk of the
// child. Readers order events globally by their sequence numbers.

package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

var fileMagic = [8]byte{'P', 'I', 'N', 'T', 'T', 'R', 'C', '1'}

const fileVersion = 1

const (
	secChaos  = 'C'
	secEvents = 'E'
	secFiles  = 'F'
	secEnd    = '.'
)

// Write serializes the recorder's flushed chunks and file table.
func (r *Recorder) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	var u16 [2]byte
	var u32 [4]byte
	var u64 [8]byte
	put16 := func(v uint16) { binary.LittleEndian.PutUint16(u16[:], v); bw.Write(u16[:]) }
	put32 := func(v uint32) { binary.LittleEndian.PutUint32(u32[:], v); bw.Write(u32[:]) }
	put64 := func(v uint64) { binary.LittleEndian.PutUint64(u64[:], v); bw.Write(u64[:]) }
	put16(fileVersion)
	put16(0)
	put32(uint32(r.CheckEvery))
	put64(uint64(r.Seed))

	if r.ChaosRates != nil {
		bw.WriteByte(secChaos)
		put64(uint64(r.ChaosSeed))
		put16(uint16(len(r.ChaosRates)))
		for _, rate := range r.ChaosRates {
			put64(math.Float64bits(rate))
		}
	}

	chunks := append([]Chunk(nil), r.Chunks()...)
	sort.SliceStable(chunks, func(i, j int) bool {
		if len(chunks[i].Events) == 0 || len(chunks[j].Events) == 0 {
			return len(chunks[i].Events) == 0 && len(chunks[j].Events) != 0
		}
		return chunks[i].Events[0].Seq < chunks[j].Events[0].Seq
	})
	var eb [EventSize]byte
	for _, c := range chunks {
		bw.WriteByte(secEvents)
		put32(c.PID)
		put32(uint32(len(c.Events)))
		for _, e := range c.Events {
			e.Encode(eb[:])
			bw.Write(eb[:])
		}
	}
	files := r.Files()
	bw.WriteByte(secFiles)
	put32(uint32(len(files)))
	for _, f := range files {
		put16(uint16(len(f)))
		bw.WriteString(f)
	}
	bw.WriteByte(secEnd)
	return bw.Flush()
}

// WriteFile writes the trace to path.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Trace is a decoded trace file.
type Trace struct {
	CheckEvery int
	Seed       int64
	// HasChaos marks traces recorded with a fault injector installed;
	// ChaosSeed and ChaosRates reconstruct it for replay.
	HasChaos   bool
	ChaosSeed  int64
	ChaosRates []float64
	Files      []string
	Chunks     []Chunk // in file (flush) order
	Events     []Event // globally ordered by sequence number
}

// FileName resolves a file id against the trace's string table.
func (t *Trace) FileName(id uint16) string {
	if int(id) < len(t.Files) {
		return t.Files[id]
	}
	return "?"
}

// Read decodes a trace from r.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if hdr != fileMagic {
		return nil, fmt.Errorf("trace: bad magic %q", hdr[:])
	}
	var meta [16]byte
	if _, err := io.ReadFull(br, meta[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(meta[0:]); v != fileVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	tr := &Trace{
		CheckEvery: int(binary.LittleEndian.Uint32(meta[4:])),
		Seed:       int64(binary.LittleEndian.Uint64(meta[8:])),
	}
	var eb [EventSize]byte
	for {
		kind, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: truncated: %w", err)
		}
		switch kind {
		case secChaos:
			var ch [10]byte
			if _, err := io.ReadFull(br, ch[:]); err != nil {
				return nil, fmt.Errorf("trace: truncated chaos section: %w", err)
			}
			tr.HasChaos = true
			tr.ChaosSeed = int64(binary.LittleEndian.Uint64(ch[0:]))
			n := binary.LittleEndian.Uint16(ch[8:])
			tr.ChaosRates = make([]float64, n)
			for i := range tr.ChaosRates {
				var rb [8]byte
				if _, err := io.ReadFull(br, rb[:]); err != nil {
					return nil, fmt.Errorf("trace: truncated chaos section: %w", err)
				}
				tr.ChaosRates[i] = math.Float64frombits(binary.LittleEndian.Uint64(rb[:]))
			}
		case secEvents:
			var ch [8]byte
			if _, err := io.ReadFull(br, ch[:]); err != nil {
				return nil, fmt.Errorf("trace: truncated chunk: %w", err)
			}
			c := Chunk{PID: binary.LittleEndian.Uint32(ch[0:])}
			n := binary.LittleEndian.Uint32(ch[4:])
			c.Events = make([]Event, 0, n)
			for i := uint32(0); i < n; i++ {
				if _, err := io.ReadFull(br, eb[:]); err != nil {
					return nil, fmt.Errorf("trace: truncated event: %w", err)
				}
				c.Events = append(c.Events, DecodeEvent(eb[:]))
			}
			tr.Chunks = append(tr.Chunks, c)
		case secFiles:
			var cnt [4]byte
			if _, err := io.ReadFull(br, cnt[:]); err != nil {
				return nil, fmt.Errorf("trace: truncated file table: %w", err)
			}
			n := binary.LittleEndian.Uint32(cnt[0:])
			for i := uint32(0); i < n; i++ {
				var l [2]byte
				if _, err := io.ReadFull(br, l[:]); err != nil {
					return nil, fmt.Errorf("trace: truncated file table: %w", err)
				}
				name := make([]byte, binary.LittleEndian.Uint16(l[:]))
				if _, err := io.ReadFull(br, name); err != nil {
					return nil, fmt.Errorf("trace: truncated file table: %w", err)
				}
				tr.Files = append(tr.Files, string(name))
			}
		case secEnd:
			for _, c := range tr.Chunks {
				tr.Events = append(tr.Events, c.Events...)
			}
			sort.Slice(tr.Events, func(i, j int) bool { return tr.Events[i].Seq < tr.Events[j].Seq })
			return tr, nil
		default:
			return nil, fmt.Errorf("trace: unknown section %q", kind)
		}
	}
}

// ReadFile decodes the trace file at path.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}
