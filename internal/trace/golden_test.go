// Golden fixture for a forked trace: testdata/trace/forked.bin is a
// committed recording of testdata/trace/forked.pint, and forked.golden is
// the analyzer's verdict on it. Re-record both with
//
//	go test ./internal/trace -run TestGoldenForkedTrace -update
package trace_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dionea/internal/ipc"
	"dionea/internal/kernel"
	"dionea/internal/pinttest"
	"dionea/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden trace fixture")

const fixtureDir = "../../testdata/trace"

func renderGolden(tr *trace.Trace) string {
	var b strings.Builder
	for _, f := range trace.Analyze(tr) {
		fmt.Fprintln(&b, f)
	}
	return b.String()
}

// checkPhaseAOrder asserts the fork handler phase-A guarantee on a
// trace's chunk sequence: every parent event recorded before a fork lies
// in an earlier chunk than any event of that fork's child.
func checkPhaseAOrder(t *testing.T, tr *trace.Trace) {
	t.Helper()
	chunkOf := map[uint64]int{} // seq -> chunk index
	firstChunk := map[uint32]int{}
	for i, c := range tr.Chunks {
		if _, ok := firstChunk[c.PID]; !ok {
			firstChunk[c.PID] = i
		}
		for _, e := range c.Events {
			chunkOf[e.Seq] = i
		}
	}
	for i, e := range tr.Events {
		if e.Op != trace.OpForkPrepare {
			continue
		}
		// The matching fork-parent event (same thread, next one after the
		// prepare) names the child; everything the parent recorded up to
		// the prepare was flushed in phase A, before the child existed.
		var child uint32
		for _, f := range tr.Events[i+1:] {
			if f.PID == e.PID && f.TID == e.TID && f.Op == trace.OpForkParent {
				child = uint32(f.Aux)
				break
			}
		}
		childChunk, ok := firstChunk[child]
		if child == 0 || !ok {
			continue // fork failed or child emitted nothing
		}
		for _, p := range tr.Events {
			if p.PID == e.PID && p.Seq <= e.Seq && chunkOf[p.Seq] >= childChunk {
				t.Errorf("phase-A violation: parent pid %d seq %d (chunk %d) not flushed before child pid %d's first chunk %d",
					p.PID, p.Seq, chunkOf[p.Seq], child, childChunk)
			}
		}
	}
}

func TestGoldenForkedTrace(t *testing.T) {
	binPath := filepath.Join(fixtureDir, "forked.bin")
	goldenPath := filepath.Join(fixtureDir, "forked.golden")

	if *update {
		src, err := os.ReadFile(filepath.Join(fixtureDir, "forked.pint"))
		if err != nil {
			t.Fatal(err)
		}
		proto := pinttest.Compile(t, string(src), "forked.pint")
		rec := trace.NewRecorder()
		rec.CheckEvery = 10
		rec.Start()
		k := kernel.New()
		k.SetTracer(rec)
		k.StartProgram(proto, kernel.Options{
			CheckEvery: 10,
			Setup:      []func(*kernel.Process){ipc.Install},
		})
		k.WaitAll()
		if err := k.WriteTrace(binPath); err != nil {
			t.Fatal(err)
		}
		tr, err := trace.ReadFile(binPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(renderGolden(tr)), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d events) and %s", binPath, len(tr.Events), goldenPath)
	}

	tr, err := trace.ReadFile(binPath)
	if err != nil {
		t.Fatalf("read fixture (rerun with -update to regenerate): %v", err)
	}
	if len(tr.Events) == 0 {
		t.Fatalf("fixture has no events")
	}
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i-1].Seq >= tr.Events[i].Seq {
			t.Fatalf("events not strictly seq-ordered at %d", i)
		}
	}
	sawFile := false
	for _, f := range tr.Files {
		if f == "forked.pint" {
			sawFile = true
		}
	}
	if !sawFile {
		t.Errorf("file table %v lacks forked.pint", tr.Files)
	}
	checkPhaseAOrder(t, tr)

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderGolden(tr); got != string(want) {
		t.Fatalf("analysis differs from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
