// The offline analyzer: replays a recorded trace's event stream through a
// model of the kernel state (descriptor tables, lock-held sets, queue
// usage) and reports the paper's bug classes on the *concrete* execution —
// the dynamic counterpart of pintvet's static rules, using the same rule
// ids so a static warning can be confirmed or refuted by a run.

package trace

import (
	"fmt"
	"sort"

	"dionea/internal/rules"
)

// Rule identifiers, aliased from the shared internal/rules vocabulary:
// pintvet emits static findings under the same ids, so a static hint
// and a trace verdict for one bug carry one name. lock-order-cycle and
// stale-state-after-fork exist on both sides since the v2 analyzer grew
// its lock graph and fork-reachability.
const (
	RulePipeLeak       = rules.PipeEndLeak
	RuleQueueAcrossFrk = rules.QueueAcrossFork
	RuleDeadlock       = rules.Deadlock
	RuleLockOrder      = rules.LockOrderCycle
	RuleStaleState     = rules.StaleStateAfterFork
)

// Finding is one confirmed dynamic diagnosis, anchored to the pint source
// line of the event that exhibits it.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	PID     uint32 `json:"pid"`
	TID     uint32 `json:"tid"`
	Seq     uint64 `json:"seq"`
	Obj     uint64 `json:"obj,omitempty"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	loc := f.File
	if loc == "" {
		loc = "?"
	}
	return fmt.Sprintf("%s:%d: [%s] %s (pid %d thread %d, seq %d)",
		loc, f.Line, f.Rule, f.Message, f.PID, f.TID, f.Seq)
}

// fdInfo is one modeled descriptor.
type fdInfo struct {
	obj   uint64
	write bool
}

// Analyze runs every rule over the trace and returns findings sorted by
// (file, line, rule).
func Analyze(tr *Trace) []Finding {
	a := &analyzer{tr: tr, fds: map[uint32]map[int64]fdInfo{}}
	a.run()
	sort.Slice(a.findings, func(i, j int) bool {
		x, y := a.findings[i], a.findings[j]
		if x.File != y.File {
			return x.File < y.File
		}
		if x.Line != y.Line {
			return x.Line < y.Line
		}
		return x.Rule < y.Rule
	})
	return a.findings
}

type analyzer struct {
	tr       *Trace
	findings []Finding

	// fds models each live process's descriptor table.
	fds map[uint32]map[int64]fdInfo
}

func (a *analyzer) emit(e Event, rule, msg string) {
	a.findings = append(a.findings, Finding{
		Rule: rule, File: a.tr.FileName(e.File), Line: int(e.Line),
		PID: e.PID, TID: e.TID, Seq: e.Seq, Obj: e.Obj, Message: msg,
	})
}

func (a *analyzer) run() {
	events := a.tr.Events
	a.modelFDs(events)
	a.rulePipeLeak(events)
	a.ruleLockOrder(events)
	a.ruleStaleState(events)
	a.ruleQueueAcrossFork(events)
	a.ruleDeadlock(events)
}

// modelFDs replays descriptor-table history: fd-open/fd-close events,
// fork inheritance (the child gets a copy of the parent's table — the §6.4
// mechanism), and process exit (close-all).
func (a *analyzer) modelFDs(events []Event) {
	table := func(pid uint32) map[int64]fdInfo {
		t, ok := a.fds[pid]
		if !ok {
			t = map[int64]fdInfo{}
			a.fds[pid] = t
		}
		return t
	}
	for _, e := range events {
		switch e.Op {
		case OpFDOpen:
			fd, w := FDFromAux(e.Aux)
			table(e.PID)[fd] = fdInfo{obj: e.Obj, write: w}
		case OpFDClose:
			fd, _ := FDFromAux(e.Aux)
			delete(table(e.PID), fd)
		case OpForkParent:
			child := uint32(e.Aux)
			ct := map[int64]fdInfo{}
			for fd, inf := range table(e.PID) {
				ct[fd] = inf
			}
			a.fds[child] = ct
		case OpProcExit:
			delete(a.fds, e.PID)
		}
	}
}

// schedulingNoise reports ops that say nothing about what a thread was
// doing, only that it was scheduled: a thread blocked in a pre-op still
// emits GIL handoffs (the release right after blocking, periodic poll
// wakeups) and park/unpark pairs under the debugger.
func schedulingNoise(op Op) bool {
	switch op {
	case OpGILAcquire, OpGILRelease, OpYield, OpPark, OpUnpark:
		return true
	}
	return false
}

// lastByThread returns each thread's final semantic event (scheduling
// noise skipped), so a thread wedged in a blocking pre-op is visibly
// sitting on that op.
func lastByThread(events []Event) map[hbKey]Event {
	out := map[hbKey]Event{}
	for _, e := range events {
		if schedulingNoise(e.Op) {
			continue
		}
		out[hbKey{e.PID, e.TID}] = e
	}
	return out
}

// rulePipeLeak: a thread whose last trace event is a pipe read that never
// completed is blocked forever unless the pipe's write end fully closes.
// If, at end of trace, live processes still hold write descriptors for
// that pipe, the read can never see EOF — the write ends leaked across
// fork are keeping it open (§6.4).
func (a *analyzer) rulePipeLeak(events []Event) {
	for _, e := range lastByThread(events) {
		if e.Op != OpPipeRead {
			continue
		}
		var holders []string
		for pid, t := range a.fds {
			for fd, inf := range t {
				if inf.obj == e.Obj && inf.write {
					holders = append(holders, fmt.Sprintf("pid %d (fd %d)", pid, fd))
				}
			}
		}
		if len(holders) == 0 {
			continue // reader would have seen EOF or a broken pipe, not a leak
		}
		sort.Strings(holders)
		a.emit(e, RulePipeLeak, fmt.Sprintf(
			"read on pipe #%d never completed: write ends still open in %v — "+
				"descriptors inherited through fork keep the pipe from reaching EOF",
			e.Obj, holders))
	}
}

// ruleLockOrder: build the lock-order graph from post-grant mutex events
// (edge held -> acquired) and report every cycle once.
func (a *analyzer) ruleLockOrder(events []Event) {
	type edge struct{ sample Event }
	held := map[hbKey][]uint64{}
	graph := map[uint64]map[uint64]edge{}
	for _, e := range events {
		k := hbKey{e.PID, e.TID}
		switch e.Op {
		case OpMutexLock:
			for _, h := range held[k] {
				if h == e.Obj {
					continue
				}
				m, ok := graph[h]
				if !ok {
					m = map[uint64]edge{}
					graph[h] = m
				}
				if _, ok := m[e.Obj]; !ok {
					m[e.Obj] = edge{sample: e}
				}
			}
			held[k] = append(held[k], e.Obj)
		case OpMutexUnlock:
			hs := held[k]
			for i := len(hs) - 1; i >= 0; i-- {
				if hs[i] == e.Obj {
					held[k] = append(hs[:i], hs[i+1:]...)
					break
				}
			}
		case OpThreadExit:
			delete(held, k)
		}
	}
	// DFS for cycles; report each strongly-connected pair once, anchored at
	// the edge that closes the cycle.
	nodes := make([]uint64, 0, len(graph))
	for n := range graph {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	reported := map[[2]uint64]bool{}
	var reaches func(from, to uint64, seen map[uint64]bool) bool
	reaches = func(from, to uint64, seen map[uint64]bool) bool {
		if from == to {
			return true
		}
		if seen[from] {
			return false
		}
		seen[from] = true
		for next := range graph[from] {
			if reaches(next, to, seen) {
				return true
			}
		}
		return false
	}
	for _, n := range nodes {
		for m, ed := range graph[n] {
			if n >= m {
				continue
			}
			if !reaches(m, n, map[uint64]bool{}) {
				continue
			}
			key := [2]uint64{n, m}
			if reported[key] {
				continue
			}
			reported[key] = true
			a.emit(ed.sample, RuleLockOrder, fmt.Sprintf(
				"mutex #%d acquired while holding #%d, and #%d is elsewhere acquired "+
					"while holding #%d: inconsistent lock order can deadlock", m, n, n, m))
		}
	}
}

// ruleStaleState: the dynamic face of pintvet's stale-state-after-fork.
// A fork() taken while a *sibling* thread of the same process holds a
// mutex means that thread was mid-update on the state the mutex guards;
// the child gets the fork-time snapshot of that state and no thread to
// ever finish or refresh it (the box64 stale-counter pattern). Report
// one finding per fork event, naming every mid-update sibling.
func (a *analyzer) ruleStaleState(events []Event) {
	held := map[hbKey][]uint64{}
	for _, e := range events {
		k := hbKey{e.PID, e.TID}
		switch e.Op {
		case OpMutexLock:
			held[k] = append(held[k], e.Obj)
		case OpMutexUnlock:
			hs := held[k]
			for i := len(hs) - 1; i >= 0; i-- {
				if hs[i] == e.Obj {
					held[k] = append(hs[:i], hs[i+1:]...)
					break
				}
			}
		case OpThreadExit, OpProcExit:
			delete(held, k)
		case OpForkParent:
			var sibs []string
			for hk, hs := range held {
				if hk.pid != e.PID || hk.tid == e.TID || len(hs) == 0 {
					continue
				}
				locks := append([]uint64(nil), hs...)
				sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })
				parts := make([]string, len(locks))
				for i, o := range locks {
					parts[i] = fmt.Sprintf("#%d", o)
				}
				sibs = append(sibs, fmt.Sprintf("thread %d holding mutex %s",
					hk.tid, joinComma(parts)))
			}
			if len(sibs) == 0 {
				continue
			}
			sort.Strings(sibs)
			a.emit(e, RuleStaleState, fmt.Sprintf(
				"fork() while a sibling thread is mid-update: %s — the child keeps "+
					"the fork-time snapshot of the guarded state and no thread to "+
					"finish it (the box64 stale-counter pattern); reset it in a "+
					"fork handler", joinComma(sibs)))
		}
	}
}

func joinComma(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// ruleQueueAcrossFork: an inter-thread queue op in one process concurrent
// (no happens-before path) with an op on the same logical queue in another
// process means the program is using a Queue across a fork — the push
// lands in the parent's object, the pop blocks on the child's copy
// (Listing 5 / §6.2).
func (a *analyzer) ruleQueueAcrossFork(events []Event) {
	isQ := func(e Event) bool { return e.Op == OpQueuePush || e.Op == OpQueuePop }
	clocks := ComputeClocks(events, isQ)
	type qe struct {
		idx int
		e   Event
	}
	byObj := map[uint64][]qe{}
	for i, e := range events {
		if isQ(e) {
			byObj[e.Obj] = append(byObj[e.Obj], qe{i, e})
		}
	}
	objs := make([]uint64, 0, len(byObj))
	for o := range byObj {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, o := range objs {
		ops := byObj[o]
		found := false
		for i := 0; i < len(ops) && !found; i++ {
			for j := i + 1; j < len(ops) && !found; j++ {
				x, y := ops[i], ops[j]
				if x.e.PID == y.e.PID || x.e.Op == y.e.Op {
					continue
				}
				if !Concurrent(x.e.PID, x.e.Seq, clocks[x.idx], y.e.PID, y.e.Seq, clocks[y.idx]) {
					continue
				}
				pop, push := x.e, y.e
				if pop.Op != OpQueuePop {
					pop, push = push, pop
				}
				a.emit(pop, RuleQueueAcrossFrk, fmt.Sprintf(
					"pop on queue #%d in pid %d raced a push in pid %d (%s:%d): "+
						"Queue is inter-thread, not inter-process — fork copies it, "+
						"so the push can never wake this pop",
					o, pop.PID, push.PID, a.tr.FileName(push.File), push.Line))
				found = true
			}
		}
	}
}

// ruleDeadlock: the kernel's own verdicts, re-anchored to source lines.
func (a *analyzer) ruleDeadlock(events []Event) {
	for _, e := range events {
		if e.Op != OpDeadlock {
			continue
		}
		a.emit(e, RuleDeadlock, fmt.Sprintf(
			"kernel declared deadlock: every thread of pid %d blocked on in-process events", e.PID))
	}
}
