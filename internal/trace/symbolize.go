// The symbolizer: one canonical text rendering for a trace event, shared
// by `pinttrace -dump` and the core explorer's trace-tail view so a line
// from a post-mortem core greps identically against a full trace dump.

package trace

import (
	"fmt"

	"dionea/internal/chaos"
)

// FormatEvent renders e in the pinttrace dump style. fileName resolves
// file ids to source names (nil, or an empty result, omits the location).
func FormatEvent(e Event, fileName func(uint16) string) string {
	loc := ""
	if fileName != nil {
		if name := fileName(e.File); name != "" {
			loc = fmt.Sprintf(" %s:%d", name, e.Line)
		}
	}
	obj := ""
	if e.Obj != 0 {
		obj = fmt.Sprintf(" obj=%d", e.Obj)
	}
	aux := ""
	if e.Aux != 0 {
		aux = fmt.Sprintf(" aux=%d", e.Aux)
	}
	if e.Op == OpFault {
		// Fault events carry the chaos point in obj and the occurrence
		// number in aux; render them symbolically.
		obj = fmt.Sprintf(" point=%s", chaos.Point(e.Obj))
		aux = fmt.Sprintf(" n=%d", e.Aux)
	}
	return fmt.Sprintf("%8d pid=%d tid=%d %-13s%s%s%s", e.Seq, e.PID, e.TID, e.Op, obj, aux, loc)
}
