// Package trace is the concurrency event-trace subsystem: every
// schedulable operation in the simulated substrate (GIL handoffs, thread
// lifecycle, fork phases, pipe/semaphore/mutex/queue operations, debugger
// stops and deadlock verdicts) emits a fixed-size event into a
// per-process lock-free ring buffer. A Recorder collects flushed rings
// into a binary trace file; a Cursor replays a recorded trace by forcing
// the same global event order (and hence the same GIL handoff sequence);
// Analyze reconstructs the happens-before partial order offline and
// reports the paper's bug classes on concrete executions.
//
// The package is dependency-free so the kernel can import it.
package trace

import (
	"encoding/binary"
	"fmt"
)

// Op identifies the kind of a trace event.
type Op uint8

// Event kinds. The numeric values are part of the trace file format;
// append only.
const (
	OpNone Op = iota

	// GIL protocol.
	OpGILAcquire // thread acquired its process GIL
	OpGILRelease // thread is about to release its process GIL
	OpYield      // checkinterval tick: voluntary GIL yield point

	// Thread lifecycle.
	OpThreadSpawn // aux = new thread's TID (emitted by the creator)
	OpThreadExit  // thread finished (aux = 0 ok, 1 error)
	OpPark        // debugger/lockstep park begins
	OpUnpark      // park ended, thread runs again

	// Fork, with the paper's handler phases A/B/C.
	OpForkPrepare // phase A ran (prepare handlers, trace ring flushed)
	OpForkParent  // phase B side: child exists; aux = child PID
	OpForkChild   // phase C side: child's surviving thread; aux = parent PID

	// File descriptors. obj = pipe identity; aux = fd<<1 | writeBit.
	OpFDOpen
	OpFDClose

	// Pipe data plane. Read/write are pre-op events (emitted just before
	// the thread blocks), so a read that never completed is visibly the
	// thread's last event. obj = pipe identity.
	OpPipeRead
	OpPipeWrite // aux = payload bytes
	OpPipeEOF   // read observed end-of-stream

	// Semaphores. obj = semaphore identity. P is pre-op.
	OpSemP
	OpSemV

	// In-process mutexes. Lock is post-grant, unlock pre-release, so the
	// interval between them is exactly the held interval. obj = mutex id.
	OpMutexLock
	OpMutexUnlock

	// Queues. TQueue (inter-thread) and MPQueue (cross-process) get
	// distinct ops so the analyzer can tell which kind raced across a
	// fork. Pop/Get are pre-op. obj = queue identity.
	OpQueuePush
	OpQueuePop
	OpMPQueuePut
	OpMPQueueGet

	// Verdicts and debugger integration.
	OpBreakStop // debugger stop (aux = 0 breakpoint, 1 step, 2 disturb...)
	OpDeadlock  // fatal deadlock verdict delivered to this thread
	OpProcExit  // process teardown begins; aux = exit code

	// OpFault marks an injected chaos fault firing. obj = chaos.Point,
	// aux = the point's occurrence number, so same-seed runs produce the
	// same (obj, aux) fault sequence.
	OpFault

	opMax
)

var opNames = [...]string{
	OpNone:        "none",
	OpGILAcquire:  "gil-acquire",
	OpGILRelease:  "gil-release",
	OpYield:       "yield",
	OpThreadSpawn: "thread-spawn",
	OpThreadExit:  "thread-exit",
	OpPark:        "park",
	OpUnpark:      "unpark",
	OpForkPrepare: "fork-prepare",
	OpForkParent:  "fork-parent",
	OpForkChild:   "fork-child",
	OpFDOpen:      "fd-open",
	OpFDClose:     "fd-close",
	OpPipeRead:    "pipe-read",
	OpPipeWrite:   "pipe-write",
	OpPipeEOF:     "pipe-eof",
	OpSemP:        "sem-p",
	OpSemV:        "sem-v",
	OpMutexLock:   "mutex-lock",
	OpMutexUnlock: "mutex-unlock",
	OpQueuePush:   "queue-push",
	OpQueuePop:    "queue-pop",
	OpMPQueuePut:  "mpq-put",
	OpMPQueueGet:  "mpq-get",
	OpBreakStop:   "break-stop",
	OpDeadlock:    "deadlock",
	OpProcExit:    "proc-exit",
	OpFault:       "fault",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// EventSize is the fixed on-disk size of one encoded event.
const EventSize = 40

// Event is one trace record. Seq is a global (cross-process) sequence
// number; File indexes the trace's file-string table; Obj identifies the
// kernel object the operation touched (0 when not applicable).
type Event struct {
	Seq  uint64
	PID  uint32
	TID  uint32
	Op   Op
	File uint16
	Line int32
	Obj  uint64
	Aux  int64
}

// Encode writes the event's 40-byte little-endian representation into b.
func (e Event) Encode(b []byte) {
	_ = b[EventSize-1]
	binary.LittleEndian.PutUint64(b[0:], e.Seq)
	binary.LittleEndian.PutUint32(b[8:], e.PID)
	binary.LittleEndian.PutUint32(b[12:], e.TID)
	b[16] = uint8(e.Op)
	b[17] = 0
	binary.LittleEndian.PutUint16(b[18:], e.File)
	binary.LittleEndian.PutUint32(b[20:], uint32(e.Line))
	binary.LittleEndian.PutUint64(b[24:], e.Obj)
	binary.LittleEndian.PutUint64(b[32:], uint64(e.Aux))
}

// DecodeEvent reads a 40-byte encoded event.
func DecodeEvent(b []byte) Event {
	_ = b[EventSize-1]
	return Event{
		Seq:  binary.LittleEndian.Uint64(b[0:]),
		PID:  binary.LittleEndian.Uint32(b[8:]),
		TID:  binary.LittleEndian.Uint32(b[12:]),
		Op:   Op(b[16]),
		File: binary.LittleEndian.Uint16(b[18:]),
		Line: int32(binary.LittleEndian.Uint32(b[20:])),
		Obj:  binary.LittleEndian.Uint64(b[24:]),
		Aux:  int64(binary.LittleEndian.Uint64(b[32:])),
	}
}

// FDAux packs a descriptor number and direction into an event Aux.
func FDAux(fd int64, write bool) int64 {
	a := fd << 1
	if write {
		a |= 1
	}
	return a
}

// FDFromAux unpacks FDAux.
func FDFromAux(aux int64) (fd int64, write bool) {
	return aux >> 1, aux&1 == 1
}
