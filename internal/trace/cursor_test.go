// Divergence-message format tests: the minimizer (internal/check) and
// humans debugging a failed replay both read these strings, so the exact
// shape — expected vs. actual (pid, tid, op) triple plus the index of the
// event being replayed — is pinned here.

package trace

import (
	"testing"
	"time"
)

// shortPatience shrinks the divergence timeout for the duration of a test.
func shortPatience(t *testing.T) {
	t.Helper()
	old := replayPatience
	replayPatience = 50 * time.Millisecond
	t.Cleanup(func() { replayPatience = old })
}

func TestCursorDivergeWrongOp(t *testing.T) {
	c := NewCursor([]Event{
		{Seq: 1, PID: 1, TID: 1, Op: OpGILAcquire},
		{Seq: 2, PID: 1, TID: 1, Op: OpPipeWrite},
	})
	if seq, ok := c.Next(1, 1, OpGILAcquire, 0, 0, nil); !ok || seq != 1 {
		t.Fatalf("first Next = (%d, %v), want (1, true)", seq, ok)
	}
	// The recording wants pipe-write next; the run emits pipe-read.
	if _, ok := c.Next(1, 1, OpPipeRead, 7, 0, nil); ok {
		t.Fatalf("wrong-op Next unexpectedly ok")
	}
	div, msg := c.Diverged()
	if !div {
		t.Fatalf("cursor did not diverge")
	}
	want := "replay diverged at event 1: got (pid 1 tid 1 pipe-read), want (pid 1 tid 1 pipe-write) at seq 2"
	if msg != want {
		t.Fatalf("divergence message:\n got %q\nwant %q", msg, want)
	}
}

func TestCursorDivergeStuckEmitter(t *testing.T) {
	shortPatience(t)
	c := NewCursor([]Event{{Seq: 9, PID: 2, TID: 5, Op: OpGILAcquire}})
	// A thread the recording never scheduled here tries to emit and times
	// out waiting for a turn that can never come.
	if _, ok := c.Next(1, 3, OpMutexLock, 4, 0, nil); ok {
		t.Fatalf("stuck Next unexpectedly ok")
	}
	div, msg := c.Diverged()
	if !div {
		t.Fatalf("cursor did not diverge")
	}
	want := "replay diverged at event 0: got (pid 1 tid 3 mutex-lock) stuck emitting, want (pid 2 tid 5 gil-acquire) at seq 9"
	if msg != want {
		t.Fatalf("divergence message:\n got %q\nwant %q", msg, want)
	}
}

func TestCursorDivergeAwaitTurnTimeout(t *testing.T) {
	shortPatience(t)
	c := NewCursor([]Event{{Seq: 3, PID: 4, TID: 8, Op: OpGILAcquire}})
	cancel := make(chan struct{})
	c.AwaitTurn(1, 2, OpGILAcquire, cancel)
	div, msg := c.Diverged()
	if !div {
		t.Fatalf("cursor did not diverge")
	}
	want := "replay diverged at event 0: got (pid 1 tid 2 gil-acquire) awaiting its turn, want (pid 4 tid 8 gil-acquire) at seq 3"
	if msg != want {
		t.Fatalf("divergence message:\n got %q\nwant %q", msg, want)
	}
}

func TestCursorAwaitTurnCancelDoesNotDiverge(t *testing.T) {
	shortPatience(t)
	c := NewCursor([]Event{{Seq: 3, PID: 4, TID: 8, Op: OpGILAcquire}})
	cancel := make(chan struct{})
	close(cancel)
	c.AwaitTurn(1, 2, OpGILAcquire, cancel)
	if div, msg := c.Diverged(); div {
		t.Fatalf("cancelled AwaitTurn diverged: %s", msg)
	}
}
