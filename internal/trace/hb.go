// Happens-before reconstruction. Within one process the GIL serializes
// every event, so the per-PID sequence is a total order; across processes
// the only orderings are the fork edge (everything the parent did before
// fork-parent happens-before everything the child does) and the data-plane
// edges (a pipe write happens-before the completion of a read that could
// have consumed it, a semaphore V before a P's completion, an mp-queue put
// before a get's completion). Two events with no path between them are
// concurrent — the relation the analyzer's race rules are defined on.
//
// The data-plane edges are a sound over-approximation: every producer
// event with a smaller global sequence number is merged into the
// consumer's clock at completion time. That can only add order, never
// remove it, so "concurrent" verdicts are conservative.

package trace

// VClock maps PID -> latest event seq of that process known to
// happen-before the clock's owner.
type VClock map[uint32]uint64

func (c VClock) clone() VClock {
	n := make(VClock, len(c))
	for k, v := range c {
		n[k] = v
	}
	return n
}

func (c VClock) merge(o VClock) {
	for k, v := range o {
		if v > c[k] {
			c[k] = v
		}
	}
}

// HappensBefore reports whether an event of process pid with sequence
// number seq happens-before the event owning clock c.
func (c VClock) HappensBefore(pid uint32, seq uint64) bool {
	return seq <= c[pid]
}

// Concurrent reports whether events a (of process aPID) and b (of process
// bPID) are unordered under the reconstructed happens-before relation.
func Concurrent(aPID uint32, aSeq uint64, aClock VClock, bPID uint32, bSeq uint64, bClock VClock) bool {
	return !bClock.HappensBefore(aPID, aSeq) && !aClock.HappensBefore(bPID, bSeq)
}

// preOpConsume reports ops emitted just before a potentially-blocking
// consume; the thread's next event marks the completion.
func preOpConsume(op Op) bool {
	return op == OpPipeRead || op == OpMPQueueGet || op == OpSemP
}

// producer reports ops whose effect can satisfy a consume in another
// process.
func producer(op Op) bool {
	return op == OpPipeWrite || op == OpMPQueuePut || op == OpSemV
}

// ConsumerOp reports whether op is a (potentially blocking) data-plane
// consume: its effect depends on producers of the same object. Exported
// for the model checker's dependence relation (internal/check), which
// must agree with the happens-before edges reconstructed here.
func ConsumerOp(op Op) bool { return preOpConsume(op) }

// ProducerOp reports whether op's effect can satisfy a consume of the
// same object in another thread or process. Counterpart of ConsumerOp.
func ProducerOp(op Op) bool { return producer(op) }

// LifecycleOp reports whether op is part of process/thread lifecycle
// (fork phases, exits): such events are ordered against everything in
// their process tree, so the model checker treats any two segments that
// contain them as dependent.
func LifecycleOp(op Op) bool {
	switch op {
	case OpForkPrepare, OpForkParent, OpForkChild, OpThreadSpawn,
		OpThreadExit, OpProcExit, OpDeadlock:
		return true
	}
	return false
}

// hbThread tracks one (pid, tid)'s pending pre-op, if any.
type hbKey struct {
	pid, tid uint32
}

// ComputeClocks walks events (which must be sorted by Seq) and returns the
// vector clock of every event for which keep returns true, indexed by
// position in events. Events not kept get a nil clock; a nil keep keeps
// every event.
func ComputeClocks(events []Event, keep func(Event) bool) []VClock {
	out := make([]VClock, len(events))
	pidClock := map[uint32]VClock{}  // current clock of each process chain
	forkClock := map[uint32]VClock{} // child PID -> parent clock at fork-parent
	objClock := map[uint64]VClock{}  // merged producer clocks per object
	pending := map[hbKey]uint64{}    // thread -> object of unfinished pre-op

	for i, e := range events {
		c, ok := pidClock[e.PID]
		if !ok {
			c = VClock{}
			if fc, ok := forkClock[e.PID]; ok {
				c.merge(fc)
			}
		}
		k := hbKey{e.PID, e.TID}
		if obj, ok := pending[k]; ok {
			// This event is the completion of the thread's pre-op consume:
			// everything produced on the object so far happens-before it.
			if oc, ok := objClock[obj]; ok {
				c = c.clone()
				c.merge(oc)
			}
			delete(pending, k)
		}
		c = c.clone()
		c[e.PID] = e.Seq
		pidClock[e.PID] = c

		switch {
		case e.Op == OpForkParent:
			forkClock[uint32(e.Aux)] = c
		case producer(e.Op):
			oc, ok := objClock[e.Obj]
			if !ok {
				oc = VClock{}
				objClock[e.Obj] = oc
			}
			oc.merge(c)
		case preOpConsume(e.Op):
			pending[k] = e.Obj
		}
		if keep == nil || keep(e) {
			out[i] = c
		}
	}
	return out
}
