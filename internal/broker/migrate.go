// Live session migration (DESIGN §8): a hosted process tree moves
// between backends as a PINTCORE1 checkpoint with a resume image.
//
// Three triggers share one path (restoreOnto):
//
//   - manual: a controller's `migrate` command checkpoints the session
//     on its current backend right now and restores it elsewhere;
//   - drain: `drain <backend>` stops placing sessions on a backend and
//     migrates every session it hosts;
//   - loss: when a backend dies and the rehost grace expires, the
//     broker restores the session from the last checkpoint the backend
//     pushed (backends checkpoint after every stop), instead of
//     declaring it lost.
//
// The restored tree keeps its PIDs, breakpoints and parked threads, so
// clients notice only a session_migrated event and resume where they
// stopped. The stale source instance — if its backend still lives — is
// torn down quietly with drop_session so its teardown cannot
// masquerade as the live session dying.

package broker

import (
	"errors"
	"fmt"
	"time"

	"dionea/internal/protocol"
)

// checkpointOf obtains the freshest migratable checkpoint for s: ask
// the hosting backend for one now, falling back to the last checkpoint
// it pushed if it cannot answer (it may be dead — that is often why we
// are migrating).
func (bk *Broker) checkpointOf(s *session) *protocol.Msg {
	s.mu.Lock()
	be := s.backend
	last := s.lastCkpt
	s.mu.Unlock()
	if be != nil {
		resp, err := be.request(&protocol.Msg{Kind: "req", Cmd: protocol.CmdCheckpoint, Session: s.name}, bk.opts.HostTimeout)
		switch {
		case err == nil && resp.Err == "" && len(resp.Data) > 0:
			return resp
		case err == nil && resp.Err != "":
			bk.opts.Logf("broker: fresh checkpoint of %q failed (%s), using last pushed", s.name, resp.Err)
		case err != nil:
			bk.opts.Logf("broker: fresh checkpoint of %q failed (%v), using last pushed", s.name, err)
		}
	}
	return last
}

// pickTarget returns the lowest-named host-capable backend other than
// exclude, or nil. Lowest-name keeps the choice deterministic under a
// seeded soak.
func (bk *Broker) pickTarget(exclude string) *backend {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	var best *backend
	for name, be := range bk.backends {
		if !be.canHost || name == exclude {
			continue
		}
		if best == nil || name < best.name {
			best = be
		}
	}
	return best
}

// restoreOnto ships ckpt to the target backend (broker's choice when
// targetName is empty), rebinds s there, announces session_migrated,
// and quietly drops the stale source instance.
func (bk *Broker) restoreOnto(s *session, targetName string, ckpt *protocol.Msg, reason string) error {
	s.mu.Lock()
	src := ""
	if s.backend != nil {
		src = s.backend.name
	}
	s.mu.Unlock()
	var target *backend
	if targetName == "" {
		target = bk.pickTarget(src)
	} else {
		bk.mu.Lock()
		if be := bk.backends[targetName]; be != nil && be.canHost {
			target = be
		}
		bk.mu.Unlock()
	}
	if target == nil {
		return fmt.Errorf("broker: no host-capable backend for %s (want %q)", s.name, targetName)
	}
	if target.name == src {
		return fmt.Errorf("broker: session %s already runs on %s", s.name, src)
	}
	resp, err := target.request(&protocol.Msg{Kind: "req", Cmd: protocol.CmdHostRestored, Session: s.name, Data: ckpt.Data, Text: ckpt.Text}, bk.opts.HostTimeout)
	if err != nil {
		return err
	}
	if resp.Err != "" {
		return errors.New(resp.Err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		go func() {
			_, _ = target.request(&protocol.Msg{Kind: "req", Cmd: protocol.CmdDropSession, Session: s.name}, 5*time.Second)
		}()
		return fmt.Errorf("broker: session %s closed during migration", s.name)
	}
	old := s.backend
	s.backend = target
	s.root = resp.PID
	s.mu.Unlock()
	bk.opts.Logf("broker: session %q migrated %s -> %s (%s)", s.name, src, target.name, reason)
	bk.placementChanged(s.name, target.name, resp.PID, "migrated")
	bk.fanout(s, &protocol.Msg{Kind: "event", Cmd: protocol.EventSessionMigrated, Session: s.name, PID: resp.PID, Text: target.name, Reason: reason})
	if old != nil && old != target {
		go func() {
			_, _ = old.request(&protocol.Msg{Kind: "req", Cmd: protocol.CmdDropSession, Session: s.name}, 5*time.Second)
		}()
	}
	return nil
}

// migrateSession checkpoints s and restores it on targetName (empty =
// broker's choice).
func (bk *Broker) migrateSession(s *session, targetName, reason string) error {
	ckpt := bk.checkpointOf(s)
	if ckpt == nil || len(ckpt.Data) == 0 {
		return fmt.Errorf("broker: no checkpoint available for %s", s.name)
	}
	return bk.restoreOnto(s, targetName, ckpt, reason)
}

// sessionLost runs when a session's backend stayed gone past the
// rehost grace: restore from the last pushed checkpoint if there is
// one, close the session (the pre-HA behavior) if not.
func (bk *Broker) sessionLost(s *session, backendName string) {
	reason := fmt.Sprintf("backend %s lost", backendName)
	s.mu.Lock()
	ckpt := s.lastCkpt
	s.mu.Unlock()
	if ckpt != nil && len(ckpt.Data) > 0 {
		if err := bk.restoreOnto(s, "", ckpt, reason); err == nil {
			return
		} else {
			bk.opts.Logf("broker: checkpoint restore of %q failed (%v), closing", s.name, err)
		}
	}
	bk.closeSession(s, reason)
}

// drainBackend stops placing sessions on the named backend and
// migrates every session it hosts. Returns how many sessions moved.
func (bk *Broker) drainBackend(name string) (int, error) {
	bk.mu.Lock()
	be := bk.backends[name]
	if be == nil {
		bk.mu.Unlock()
		return 0, fmt.Errorf("broker: unknown backend %q", name)
	}
	be.canHost = false
	bk.rebuildRingLocked()
	var victims []*session
	for _, s := range bk.sessions {
		s.mu.Lock()
		if !s.closed && s.backend == be {
			victims = append(victims, s)
		}
		s.mu.Unlock()
	}
	bk.mu.Unlock()
	bk.opts.Logf("broker: draining backend %q (%d sessions)", name, len(victims))
	moved := 0
	var firstErr error
	for _, s := range victims {
		if err := bk.migrateSession(s, "", "drain"); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			bk.opts.Logf("broker: drain: migrating %q failed: %v", s.name, err)
		} else {
			moved++
		}
	}
	if moved == 0 && firstErr != nil {
		return 0, firstErr
	}
	return moved, nil
}

// handleMigrate answers a controller's migrate command.
func (bk *Broker) handleMigrate(s *session, conn *protocol.Conn, m *protocol.Msg) {
	resp := &protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd}
	if err := bk.migrateSession(s, m.Text, "manual migrate"); err != nil {
		resp.Err = err.Error()
	} else {
		s.mu.Lock()
		resp.OK = true
		resp.PID = s.root
		if s.backend != nil {
			resp.Text = s.backend.name
		}
		s.mu.Unlock()
	}
	_ = conn.Send(resp)
}

// handleDrain answers a controller's drain command.
func (bk *Broker) handleDrain(conn *protocol.Conn, m *protocol.Msg) {
	resp := &protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd}
	moved, err := bk.drainBackend(m.Text)
	if err != nil {
		resp.Err = err.Error()
	} else {
		resp.OK = true
		resp.Seq = uint64(moved)
		resp.Text = fmt.Sprintf("%d session(s) migrated off %s", moved, m.Text)
	}
	_ = conn.Send(resp)
}
