// End-to-end fabric tests: a real broker, real dioneas backends hosting
// real kernels, real clients attached through TCP. Everything runs
// in-process, so a test failure is debuggable, but every byte crosses
// the same loopback sockets production would use.
package broker_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"dionea/internal/broker"
	"dionea/internal/client"
	"dionea/internal/compiler"
	"dionea/internal/dionea"
	"dionea/internal/ipc"
	"dionea/internal/kernel"
	"dionea/internal/protocol"
)

// fabric spins up a broker plus n backends compiled from src and waits
// until every backend has registered.
func fabric(t *testing.T, n int, src string, bopts broker.Options) (*broker.Broker, []*dionea.Backend) {
	t.Helper()
	proto, err := compiler.CompileSource(src, "program.pint")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	bk, err := broker.Start("127.0.0.1:0", bopts)
	if err != nil {
		t.Fatalf("broker start: %v", err)
	}
	t.Cleanup(func() { _ = bk.Close() })
	backends := make([]*dionea.Backend, n)
	for i := range backends {
		backends[i] = dionea.StartBackend(bk.Addr(), dionea.BackendOptions{
			Name:    fmt.Sprintf("be%d", i),
			Proto:   proto,
			Sources: map[string]string{"program.pint": src},
			Setup:   []func(*kernel.Process){ipc.Install},
		})
	}
	t.Cleanup(func() {
		for _, be := range backends {
			be.Close()
		}
	})
	waitFor(t, 5*time.Second, func() bool { return bk.Stats().Backends == n }, "backends registered")
	return bk, backends
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// mainTID polls the processes-and-threads view for the parked main UE.
func mainTID(t *testing.T, c *client.Client, pid int64) int64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		infos, err := c.Threads(pid)
		if err == nil {
			for _, ti := range infos {
				if ti.Main {
					return ti.TID
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("no main thread for pid %d (last err: %v)", pid, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFabricBasic drives one session end to end through the broker: the
// session is hosted on demand, the controller inspects and releases the
// parked program, output and exit events arrive through the fan-out.
func TestFabricBasic(t *testing.T) {
	bk, _ := fabric(t, 2, `print("hello fabric")`, broker.Options{})
	c, err := client.NewBroker(bk.Addr(), "dev", protocol.RoleController, client.Options{})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	defer c.Close()
	if c.Role() != protocol.RoleController {
		t.Fatalf("role = %q, want controller", c.Role())
	}
	root := c.Sessions()[0]
	tid := mainTID(t, c, root)
	if err := c.Continue(root, tid); err != nil {
		t.Fatalf("continue: %v", err)
	}
	sawOutput := false
	_, err = c.WaitEvent(func(e client.Event) bool {
		if e.Msg.Cmd == protocol.EventOutput && strings.Contains(e.Msg.Text, "hello fabric") {
			sawOutput = true
		}
		return e.Msg.Cmd == protocol.EventProcessExited && e.Msg.PID == root
	}, 15*time.Second)
	if err != nil {
		t.Fatalf("process_exited never arrived: %v", err)
	}
	if !sawOutput {
		t.Fatalf("program output never reached the client through the fan-out")
	}
	if st := bk.Stats(); st.Sessions != 1 {
		t.Fatalf("stats sessions = %d, want 1", st.Sessions)
	}
}

// TestFabricPlacesSessionsAcrossBackends hosts many sessions and checks
// the ring actually spreads them over every backend.
func TestFabricPlacesSessionsAcrossBackends(t *testing.T) {
	bk, backends := fabric(t, 4, `sleep(60)`, broker.Options{})
	var clients []*client.Client
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	for i := 0; i < 24; i++ {
		c, err := client.NewBroker(bk.Addr(), fmt.Sprintf("spread-%d", i), protocol.RoleController, client.Options{})
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		clients = append(clients, c)
	}
	if st := bk.Stats(); st.Sessions != 24 {
		t.Fatalf("sessions = %d, want 24", st.Sessions)
	}
	for i, be := range backends {
		if be.Hosted() == 0 {
			t.Fatalf("backend %d hosts no sessions; placement is not spreading", i)
		}
	}
}

// TestObserverRejectedAndReadOnly: a second controller request is
// granted observer, and observers cannot drive the debuggee.
func TestObserverRejectedAndReadOnly(t *testing.T) {
	bk, _ := fabric(t, 1, `print("x")`, broker.Options{})
	ctl, err := client.NewBroker(bk.Addr(), "ro", protocol.RoleController, client.Options{})
	if err != nil {
		t.Fatalf("controller attach: %v", err)
	}
	defer ctl.Close()
	obs, err := client.NewBroker(bk.Addr(), "ro", protocol.RoleController, client.Options{})
	if err != nil {
		t.Fatalf("second attach: %v", err)
	}
	defer obs.Close()
	if obs.Role() != protocol.RoleObserver {
		t.Fatalf("second controller request granted %q, want observer", obs.Role())
	}
	root := obs.Sessions()[0]
	// Reads work.
	tid := mainTID(t, obs, root)
	if _, err := obs.Stack(root, tid); err != nil {
		t.Fatalf("observer stack read failed: %v", err)
	}
	// Control does not.
	if err := obs.Continue(root, tid); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("observer continue = %v, want read-only rejection", err)
	}
}

// TestControllerHandover: when the controller disconnects, the oldest
// attachment that asked for control is promoted and told so.
func TestControllerHandover(t *testing.T) {
	bk, _ := fabric(t, 1, `sleep(60)`, broker.Options{})
	ctl, err := client.NewBroker(bk.Addr(), "hand", protocol.RoleController, client.Options{})
	if err != nil {
		t.Fatalf("controller attach: %v", err)
	}
	standby, err := client.NewBroker(bk.Addr(), "hand", protocol.RoleController, client.Options{})
	if err != nil {
		t.Fatalf("standby attach: %v", err)
	}
	defer standby.Close()
	if standby.Role() != protocol.RoleObserver {
		t.Fatalf("standby role = %q, want observer until handover", standby.Role())
	}
	ctl.Close()
	if _, err := standby.WaitEvent(func(e client.Event) bool {
		return e.Msg.Cmd == protocol.EventControllerGranted
	}, 10*time.Second); err != nil {
		t.Fatalf("controller_granted never arrived: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return standby.Role() == protocol.RoleController }, "role promotion")
	// The promoted client can now actually drive the session.
	root := standby.Sessions()[0]
	tid := mainTID(t, standby, root)
	if err := standby.Continue(root, tid); err != nil {
		t.Fatalf("promoted controller cannot drive: %v", err)
	}
}

// TestBackendFailover: killing a session's backend must end every
// attachment with a clean session_closed carrying a reason — and a
// re-attach must re-host the session on a fresh backend.
func TestBackendFailover(t *testing.T) {
	bk, backends := fabric(t, 1, `sleep(60)`, broker.Options{
		PingInterval: 50 * time.Millisecond,
		PingMisses:   2,
		RehostGrace:  100 * time.Millisecond,
	})
	c, err := client.NewBroker(bk.Addr(), "fo", protocol.RoleController, client.Options{})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	defer c.Close()
	_ = mainTID(t, c, c.Sessions()[0])

	backends[0].Close()
	e, err := c.WaitEvent(func(e client.Event) bool {
		return e.Msg.Cmd == protocol.EventSessionClosed && e.Msg.Reason != ""
	}, 15*time.Second)
	if err != nil {
		t.Fatalf("session_closed with reason never arrived: %v", err)
	}
	if !strings.Contains(e.Msg.Reason, "lost") && !strings.Contains(e.Msg.Reason, "connection") {
		t.Fatalf("session_closed reason = %q", e.Msg.Reason)
	}

	// A fresh backend joins; re-attaching the same session re-hosts it.
	proto, err := compiler.CompileSource(`sleep(60)`, "program.pint")
	if err != nil {
		t.Fatal(err)
	}
	be := dionea.StartBackend(bk.Addr(), dionea.BackendOptions{
		Name:  "replacement",
		Proto: proto,
		Setup: []func(*kernel.Process){ipc.Install},
	})
	defer be.Close()
	waitFor(t, 5*time.Second, func() bool { return bk.Stats().Backends == 1 }, "replacement registration")
	c2, err := client.NewBroker(bk.Addr(), "fo", protocol.RoleController, client.Options{})
	if err != nil {
		t.Fatalf("re-attach after failover: %v", err)
	}
	defer c2.Close()
	_ = mainTID(t, c2, c2.Sessions()[0])
}

// rawObserver attaches a bare source channel and captures the exact
// bytes the broker writes — the fan-out identity check must compare
// wire bytes, not parsed structures.
type rawObserver struct {
	conn  net.Conn
	lines chan string
}

func attachRawObserver(t *testing.T, addr, session, name string) *rawObserver {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("raw observer dial: %v", err)
	}
	att, _ := json.Marshal(&protocol.Msg{
		Kind: "req", Cmd: protocol.CmdAttach,
		Channel: protocol.ChannelSource, Session: session,
		Role: protocol.RoleObserver, Text: name,
	})
	if _, err := nc.Write(append(att, '\n')); err != nil {
		t.Fatalf("raw observer attach: %v", err)
	}
	r := bufio.NewReader(nc)
	resp, err := r.ReadString('\n')
	if err != nil || !strings.Contains(resp, `"ok":true`) {
		t.Fatalf("raw observer attach resp = %q, %v", resp, err)
	}
	o := &rawObserver{conn: nc, lines: make(chan string, 4096)}
	go func() {
		defer close(o.lines)
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			o.lines <- line
		}
	}()
	t.Cleanup(func() { _ = nc.Close() })
	return o
}

// collect drains lines until a line matching stop arrives or the
// timeout expires.
func (o *rawObserver) collect(t *testing.T, stop string, timeout time.Duration) []string {
	t.Helper()
	var got []string
	deadline := time.After(timeout)
	for {
		select {
		case line, ok := <-o.lines:
			if !ok {
				return got
			}
			got = append(got, line)
			if strings.Contains(line, stop) {
				return got
			}
		case <-deadline:
			t.Fatalf("observer stream never delivered %q (got %d lines)", stop, len(got))
		}
	}
}

// stripMarkers removes events_dropped markers — the only permitted
// per-observer divergence.
func stripMarkers(lines []string) []string {
	out := lines[:0:0]
	for _, l := range lines {
		if !strings.Contains(l, `"events_dropped"`) {
			out = append(out, l)
		}
	}
	return out
}

// TestObserverFanoutByteIdentical: N observers attached before the
// program runs must see byte-for-byte identical event streams.
func TestObserverFanoutByteIdentical(t *testing.T) {
	src := `for i in range(20) {
    print("tick", i)
}`
	bk, _ := fabric(t, 2, src, broker.Options{})
	ctl, err := client.NewBroker(bk.Addr(), "fan", protocol.RoleController, client.Options{})
	if err != nil {
		t.Fatalf("controller attach: %v", err)
	}
	defer ctl.Close()
	obs := make([]*rawObserver, 3)
	for i := range obs {
		obs[i] = attachRawObserver(t, bk.Addr(), "fan", fmt.Sprintf("raw-%d", i))
	}
	root := ctl.Sessions()[0]
	tid := mainTID(t, ctl, root)
	if err := ctl.Continue(root, tid); err != nil {
		t.Fatalf("continue: %v", err)
	}
	streams := make([][]string, len(obs))
	for i, o := range obs {
		streams[i] = stripMarkers(o.collect(t, `"process_exited"`, 15*time.Second))
	}
	for i := 1; i < len(streams); i++ {
		if a, b := strings.Join(streams[0], ""), strings.Join(streams[i], ""); a != b {
			t.Fatalf("observer %d stream diverges from observer 0:\n--- observer 0 ---\n%s\n--- observer %d ---\n%s", i, a, i, b)
		}
	}
	if len(stripMarkers(streams[0])) < 20 {
		t.Fatalf("observer 0 saw only %d events for a 20-line program", len(streams[0]))
	}
}

// TestSlowObserverCoalesces: an observer that stops reading gets
// events shed (with an explicit marker once it resumes) while the
// controller's stream is not stalled.
func TestSlowObserverCoalesces(t *testing.T) {
	// Long lines fill the slow observer's socket fast so its queue
	// actually overflows.
	src := `pad = "xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"
line = pad + pad + pad + pad + pad + pad + pad + pad
for i in range(2000) {
    print(line, i)
}`
	bk, _ := fabric(t, 1, src, broker.Options{
		QueueLen:     8,
		WriteTimeout: 10 * time.Second,
	})
	ctl, err := client.NewBroker(bk.Addr(), "slow", protocol.RoleController, client.Options{})
	if err != nil {
		t.Fatalf("controller attach: %v", err)
	}
	defer ctl.Close()
	// The sloth attaches its source channel and then never reads: its
	// socket fills, the broker's writer blocks, its bounded queue
	// overflows — backpressure must stop there, not at the backend.
	sloth, err := net.Dial("tcp", bk.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer sloth.Close()
	att, _ := json.Marshal(&protocol.Msg{
		Kind: "req", Cmd: protocol.CmdAttach,
		Channel: protocol.ChannelSource, Session: "slow",
		Role: protocol.RoleObserver, Text: "sloth",
	})
	if _, err := sloth.Write(append(att, '\n')); err != nil {
		t.Fatal(err)
	}
	if resp, err := bufio.NewReader(sloth).ReadString('\n'); err != nil || !strings.Contains(resp, `"ok":true`) {
		t.Fatalf("sloth attach resp = %q, %v", resp, err)
	}

	root := ctl.Sessions()[0]
	tid := mainTID(t, ctl, root)
	start := time.Now()
	if err := ctl.Continue(root, tid); err != nil {
		t.Fatalf("continue: %v", err)
	}
	// The controller must see the run end promptly despite the sloth.
	if _, err := ctl.WaitEvent(func(e client.Event) bool {
		return e.Msg.Cmd == protocol.EventProcessExited && e.Msg.PID == root
	}, 20*time.Second); err != nil {
		t.Fatalf("controller stalled behind slow observer: %v", err)
	}
	t.Logf("controller finished in %v with a wedged observer attached", time.Since(start))
	waitFor(t, 10*time.Second, func() bool { return bk.Stats().EventsDropped > 0 }, "events shed for the slow observer")
	// Critical events (process_exited, session_closed, handover) are
	// never shed, so the bound may be exceeded by a handful of them —
	// but never by the flood itself.
	if hw := bk.Stats().QueueHighWater; hw > 8+4 {
		t.Fatalf("queue high-water %d exceeded its bound 8 by more than the critical-event allowance", hw)
	}
}
