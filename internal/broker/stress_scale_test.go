//go:build !race

package broker_test

// Stress scale: the plain build hosts a thousand sessions across four
// backends.
const (
	stressSessions = 1000
	stressBackends = 4
)
