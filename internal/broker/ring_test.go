package broker

import (
	"fmt"
	"testing"

	"dionea/internal/protocol"
)

func msg(cmd, text string) *protocol.Msg {
	return &protocol.Msg{Kind: "event", Cmd: cmd, Text: text}
}

// The ring must be a pure function of the membership set — registration
// order must not move sessions.
func TestRingDeterministic(t *testing.T) {
	a := buildRing([]string{"be0", "be1", "be2", "be3"})
	b := buildRing([]string{"be3", "be1", "be0", "be2"})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("session-%d", i)
		if a.owner(key) != b.owner(key) {
			t.Fatalf("owner(%q) depends on registration order: %q vs %q", key, a.owner(key), b.owner(key))
		}
	}
}

// With 64 vnodes per backend, 4 backends over 2000 keys should each own
// a meaningful share — no backend starved, none dominating.
func TestRingBalance(t *testing.T) {
	names := []string{"be0", "be1", "be2", "be3"}
	r := buildRing(names)
	counts := map[string]int{}
	const keys = 2000
	for i := 0; i < keys; i++ {
		counts[r.owner(fmt.Sprintf("session-%d", i))]++
	}
	for _, n := range names {
		share := float64(counts[n]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("backend %s owns %.1f%% of keys (counts=%v)", n, share*100, counts)
		}
	}
}

// Removing one backend must only move the keys it owned: consistent
// hashing's whole point. Keys owned by survivors stay put.
func TestRingMinimalMovement(t *testing.T) {
	full := buildRing([]string{"be0", "be1", "be2", "be3"})
	reduced := buildRing([]string{"be0", "be1", "be2"})
	moved := 0
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("session-%d", i)
		was, is := full.owner(key), reduced.owner(key)
		if was == "be3" {
			if is == "be3" {
				t.Fatalf("key %q still owned by removed backend", key)
			}
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %q moved from surviving backend %q to %q", key, was, is)
		}
	}
	if moved == 0 {
		t.Fatalf("removed backend owned no keys — balance is broken")
	}
}

func TestRingEmpty(t *testing.T) {
	if owner := buildRing(nil).owner("x"); owner != "" {
		t.Fatalf("empty ring returned owner %q", owner)
	}
}

// The queue's overflow policy: coalescible events are shed first, a
// marker carries the exact count, and push never grows the queue past
// its bound.
func TestQueueOverflowPolicy(t *testing.T) {
	q := newEventQueue(3)
	q.push(msg("stopped", "a"))
	q.push(msg("output", "b"))
	q.push(msg("stopped", "c"))
	q.push(msg("stopped", "d")) // overflow: "output" (coalescible) evicted
	q.push(msg("stopped", "e")) // overflow: no coalescible left, oldest ("a") evicted

	m, ok := q.pop()
	if !ok || m.Cmd != "events_dropped" || m.Seq != 2 {
		t.Fatalf("first pop = %+v, %v; want events_dropped with seq 2", m, ok)
	}
	var got []string
	for i := 0; i < 3; i++ {
		m, ok := q.pop()
		if !ok {
			t.Fatalf("queue closed early")
		}
		got = append(got, m.Text)
	}
	if got[0] != "c" || got[1] != "d" || got[2] != "e" {
		t.Fatalf("surviving events = %v; want [c d e]", got)
	}
	hw, dropped := q.stats()
	if hw != 3 || dropped != 2 {
		t.Fatalf("stats = %d, %d; want 3, 2", hw, dropped)
	}
	// Critical events are never evicted: once the buffer holds only
	// process_exited/session_closed, a later push sheds the newcomer's
	// non-critical peers — or overshoots the bound — rather than lose
	// a terminal signal.
	q.push(msg("process_exited", "px"))
	q.push(msg("session_closed", "sc"))
	q.push(msg("stopped", "s1"))
	q.push(msg("stopped", "s2")) // full: evicts s1 (oldest non-critical)
	for _, want := range []string{"px", "sc", "s2"} {
		m, ok := q.pop()
		if m.Cmd == "events_dropped" {
			m, ok = q.pop()
		}
		if !ok || m.Text != want {
			t.Fatalf("critical-policy pop = %+v, %v; want %q", m, ok, want)
		}
	}

	// close still drains what was pushed before it.
	q.push(msg("stopped", "tail"))
	q.close()
	if m, ok := q.pop(); !ok || m.Text != "tail" {
		t.Fatalf("pop after close = %+v, %v; want queued tail event", m, ok)
	}
	if _, ok := q.pop(); ok {
		t.Fatalf("pop past drained close succeeded")
	}
}
