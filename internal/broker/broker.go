// Package broker implements dioneabroker: one process that registers
// many dioneas backends, places debug sessions on them by consistent
// hashing, and multiplexes many client connections over one connection
// per backend (DESIGN §8).
//
// The fabric's contracts, in one place:
//
//   - Placement: a client attach to an unknown session makes the broker
//     pick the session's ring owner among host-capable backends and ask
//     it (CmdHostSession) to start a fresh instance of its program
//     under that name.
//   - Roles: exactly one controller per session drives it; any number
//     of observers watch read-only. When the controller disconnects,
//     the oldest attachment that asked for control is promoted and told
//     with controller_granted.
//   - Backpressure: every source attachment has a bounded queue; a slow
//     observer sheds coalescible events (output, source refreshes) and
//     is told with events_dropped markers. Backends are never stalled
//     by a slow client.
//   - Health and failover: backends are pinged; a dead backend's
//     sessions get a grace window for the backend to re-register (its
//     registration lists hosted sessions, so they rebind), after which
//     every attachment receives session_closed with a reason. A
//     re-attach after that re-hosts the tree on a surviving backend.
package broker

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dionea/internal/chaos"
	"dionea/internal/protocol"
)

// Options tunes a Broker. The zero value serves.
type Options struct {
	// Chaos, when non-nil, wraps every accepted connection so conn-drop /
	// conn-delay / conn-tear faults fire on the broker's writes too.
	Chaos *chaos.Injector
	// QueueLen bounds each source attachment's event queue (default 256).
	QueueLen int
	// PingInterval / PingMisses drive backend health checks (defaults
	// 500ms / 3): PingMisses consecutive failed pings declare a backend
	// dead.
	PingInterval time.Duration
	PingMisses   int
	// RehostGrace is how long a dead backend's sessions wait for it to
	// re-register before they are declared lost (default 2s).
	RehostGrace time.Duration
	// WriteTimeout bounds every write to a client connection (default
	// 2s): a client that stops draining its socket is detached, not
	// waited on.
	WriteTimeout time.Duration
	// HostTimeout bounds a CmdHostSession round trip (default 15s).
	HostTimeout time.Duration
	// Name identifies this broker in promotion notices and replication
	// handshakes (default "broker").
	Name string
	// Primary, when non-empty, starts this broker as a warm standby of
	// the primary broker at that address: it accepts backend
	// registrations (backends register with every broker) but rejects
	// clients, and replicates session placements from the primary until
	// the replication link dies for PromoteAfter — then it promotes
	// itself and serves.
	Primary string
	// PromoteAfter is how long the standby's replication link must stay
	// dead — redials failing — before the standby promotes (default 2s).
	PromoteAfter time.Duration
	// Logf receives one line per fabric state change; nil discards.
	Logf func(format string, a ...any)
}

func (o Options) withDefaults() Options {
	if o.QueueLen == 0 {
		o.QueueLen = 256
	}
	if o.PingInterval == 0 {
		o.PingInterval = 500 * time.Millisecond
	}
	if o.PingMisses == 0 {
		o.PingMisses = 3
	}
	if o.RehostGrace == 0 {
		o.RehostGrace = 2 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 2 * time.Second
	}
	if o.HostTimeout == 0 {
		o.HostTimeout = 15 * time.Second
	}
	if o.Name == "" {
		o.Name = "broker"
	}
	if o.PromoteAfter == 0 {
		o.PromoteAfter = 2 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Broker is the fabric process. Create with Start.
type Broker struct {
	opts Options
	ln   net.Listener

	mu       sync.Mutex
	backends map[string]*backend
	sessions map[string]*session
	ring     *ring
	closed   bool

	// HA state (replica.go): standby is true until promotion; promoted
	// records that this broker was once a standby (clients are told with
	// broker_promoted). placements is the standby's replicated view;
	// repls are the replication subscribers of a primary.
	standby    bool
	promoted   bool
	placements map[string]*placement
	repls      map[*protocol.Conn]bool
}

// backend is one registered dioneas process: a single connection
// carrying broker→backend requests (correlated by rewritten IDs) and
// backend→broker session events.
type backend struct {
	name    string
	canHost bool
	conn    *protocol.Conn

	mu      sync.Mutex
	pending map[int64]chan *protocol.Msg
	nextID  int64
	gone    bool
	goneCh  chan struct{}
	failOne sync.Once
}

// session is one debug session: a process tree hosted on a backend plus
// every client attached to it.
type session struct {
	name  string
	ready chan struct{} // closed once hosting resolved

	mu      sync.Mutex
	hostErr error
	root    int64
	backend *backend // nil while orphaned (grace window)
	clients map[string]*clientAtt
	seq     int64
	// replay holds the session's structural history (fork events), sent
	// to every fresh source attachment so a late or reconnecting client
	// learns the process tree. Transient events are not replayed.
	replay []*protocol.Msg
	// critical holds terminal facts (process_exited, deadlock,
	// session_migrated) replayed to fresh source attachments: a client
	// that was mid-failover when its process died still learns about it.
	critical []*protocol.Msg
	// lastCkpt is the newest checkpoint event the hosting backend
	// pushed — the restore source when the backend dies (migrate.go).
	lastCkpt *protocol.Msg
	closed   bool
}

// clientAtt pairs the two connections of one client, matched by the
// client-chosen name sent in both attach messages.
type clientAtt struct {
	name         string
	seq          int64
	wantsControl bool
	// controller is written only under the session lock but read
	// lock-free on the event fan-out path (isController), so it must be
	// atomic: a torn read there would be a data race, and "benign" races
	// are still undefined behavior under the Go memory model.
	controller atomic.Bool
	cmd        *protocol.Conn
	src        *protocol.Conn
	q          *eventQueue
}

var errNoBackend = errors.New("broker: no host-capable backend registered")

// Start listens on addr (host:port, empty port for ephemeral) and
// serves until Close.
func Start(addr string, opts Options) (*Broker, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	bk := &Broker{
		opts:       opts.withDefaults(),
		ln:         ln,
		backends:   make(map[string]*backend),
		sessions:   make(map[string]*session),
		ring:       buildRing(nil),
		placements: make(map[string]*placement),
		repls:      make(map[*protocol.Conn]bool),
	}
	if bk.opts.Primary != "" {
		bk.standby = true
		go bk.runStandby()
	}
	go bk.acceptLoop()
	return bk, nil
}

// Addr returns the listen address, for clients and backends to dial.
func (bk *Broker) Addr() string { return bk.ln.Addr().String() }

// Close stops the broker: the listener closes, every backend link is
// torn down, and every session ends with session_closed.
func (bk *Broker) Close() error {
	bk.mu.Lock()
	if bk.closed {
		bk.mu.Unlock()
		return nil
	}
	bk.closed = true
	backends := make([]*backend, 0, len(bk.backends))
	for _, be := range bk.backends {
		backends = append(backends, be)
	}
	sessions := make([]*session, 0, len(bk.sessions))
	for _, s := range bk.sessions {
		sessions = append(sessions, s)
	}
	bk.mu.Unlock()
	err := bk.ln.Close()
	for _, be := range backends {
		be.fail()
	}
	for _, s := range sessions {
		bk.closeSession(s, "broker shutting down")
	}
	return err
}

func (bk *Broker) acceptLoop() {
	for {
		nc, err := bk.ln.Accept()
		if err != nil {
			return
		}
		go bk.serveConn(nc)
	}
}

// serveConn handshakes one accepted connection: the first message
// declares what it is (backend registration or client attach).
func (bk *Broker) serveConn(nc net.Conn) {
	conn := protocol.NewConn(chaos.WrapConn(nc, bk.opts.Chaos, nil))
	conn.SetWriteTimeout(bk.opts.WriteTimeout)
	conn.SetReadTimeout(10 * time.Second)
	m, err := conn.Recv()
	if err != nil {
		_ = conn.Close()
		return
	}
	conn.SetReadTimeout(0)
	switch m.Cmd {
	case protocol.CmdRegisterBackend:
		bk.serveBackend(conn, m)
	case protocol.CmdReplicate:
		bk.serveRepl(conn, m)
	case protocol.CmdAttach:
		switch m.Channel {
		case protocol.ChannelCommand:
			bk.serveClientCmd(conn, m)
		case protocol.ChannelSource:
			bk.serveClientSrc(conn, m)
		default:
			_ = conn.Send(&protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd, Err: "attach: unknown channel " + m.Channel})
			_ = conn.Close()
		}
	default:
		_ = conn.Send(&protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd, Err: "expected register_backend or attach"})
		_ = conn.Close()
	}
}

// ---------------------------------------------------------------------------
// Backends

func (bk *Broker) serveBackend(conn *protocol.Conn, reg *protocol.Msg) {
	// Backend events can be sparse; health is the ping loop's job, not a
	// read deadline's.
	conn.SetWriteTimeout(bk.opts.WriteTimeout)
	be := &backend{
		name:    reg.Text,
		canHost: reg.On,
		conn:    conn,
		pending: make(map[int64]chan *protocol.Msg),
		goneCh:  make(chan struct{}),
	}
	bk.mu.Lock()
	if bk.closed {
		bk.mu.Unlock()
		_ = conn.Close()
		return
	}
	if old := bk.backends[be.name]; old != nil {
		// Same name re-registering over a link the broker hasn't noticed
		// dying yet: the new link wins.
		go bk.backendDown(old)
	}
	bk.backends[be.name] = be
	bk.rebuildRingLocked()
	bk.mu.Unlock()
	if err := conn.Send(&protocol.Msg{Kind: "resp", ID: reg.ID, Cmd: reg.Cmd, OK: true, Text: be.name}); err != nil {
		bk.backendDown(be)
		return
	}
	bk.opts.Logf("broker: backend %q registered (canHost=%v, sessions=%v)", be.name, be.canHost, reg.Sessions)

	// Rebind sessions the backend still hosts from before its link
	// dropped: they were orphaned, now they are live again. A standby
	// only records who hosts what, for promotion time.
	for _, sn := range reg.Sessions {
		bk.mu.Lock()
		if bk.standby {
			pl := bk.placements[sn]
			if pl == nil {
				pl = &placement{}
				bk.placements[sn] = pl
			}
			pl.backend = be.name
			bk.mu.Unlock()
			continue
		}
		s := bk.sessions[sn]
		bk.mu.Unlock()
		if s == nil {
			continue
		}
		s.mu.Lock()
		rebound := false
		if !s.closed && s.backend == nil {
			s.backend = be
			rebound = true
		}
		root := s.root
		s.mu.Unlock()
		if rebound {
			bk.opts.Logf("broker: session %q rebound to backend %q", sn, be.name)
			bk.fanout(s, &protocol.Msg{Kind: "event", Cmd: protocol.EventSessionReconnected, Session: sn, PID: root})
		}
	}

	go bk.pingBackend(be)
	for {
		m, err := conn.Recv()
		if err != nil {
			bk.backendDown(be)
			return
		}
		switch m.Kind {
		case "resp":
			be.routeResp(m)
		case "event":
			if m.Session == "" {
				continue
			}
			bk.mu.Lock()
			s := bk.sessions[m.Session]
			standby := bk.standby
			bk.mu.Unlock()
			if m.Cmd == protocol.CmdCheckpoint {
				// Checkpoint payloads are broker-internal migration
				// material, never fanned to clients.
				if s != nil {
					s.mu.Lock()
					s.lastCkpt = m
					s.mu.Unlock()
				} else if standby {
					bk.standbyBuffer(be, m)
				}
				continue
			}
			if s != nil {
				bk.fanout(s, m)
			} else if standby {
				bk.standbyBuffer(be, m)
			}
		}
	}
}

func (bk *Broker) pingBackend(be *backend) {
	t := time.NewTicker(bk.opts.PingInterval)
	defer t.Stop()
	misses := 0
	for {
		select {
		case <-be.goneCh:
			return
		case <-t.C:
		}
		_, err := be.request(&protocol.Msg{Kind: "req", Cmd: protocol.CmdPing}, bk.opts.PingInterval*time.Duration(bk.opts.PingMisses))
		if err == nil {
			misses = 0
			continue
		}
		misses++
		if misses >= bk.opts.PingMisses {
			bk.opts.Logf("broker: backend %q failed %d pings, declaring dead", be.name, misses)
			bk.backendDown(be)
			return
		}
	}
}

// backendDown removes a dead backend and orphans its sessions: each
// gets RehostGrace for the backend to re-register before it is closed.
func (bk *Broker) backendDown(be *backend) {
	be.fail()
	bk.mu.Lock()
	if bk.backends[be.name] == be {
		delete(bk.backends, be.name)
		bk.rebuildRingLocked()
	}
	orphans := make([]*session, 0)
	for _, s := range bk.sessions {
		s.mu.Lock()
		if s.backend == be {
			s.backend = nil
			orphans = append(orphans, s)
		}
		s.mu.Unlock()
	}
	bk.mu.Unlock()
	for _, s := range orphans {
		bk.orphanGrace(s, be.name)
	}
}

func (bk *Broker) rebuildRingLocked() {
	names := make([]string, 0, len(bk.backends))
	for n, be := range bk.backends {
		if be.canHost {
			names = append(names, n)
		}
	}
	bk.ring = buildRing(names)
}

// request sends m to the backend with a broker-assigned correlation ID
// and waits for the matching response. The caller owns m.
func (be *backend) request(m *protocol.Msg, timeout time.Duration) (*protocol.Msg, error) {
	ch := make(chan *protocol.Msg, 1)
	be.mu.Lock()
	if be.gone {
		be.mu.Unlock()
		return nil, fmt.Errorf("broker: backend %s is gone", be.name)
	}
	be.nextID++
	id := be.nextID
	be.pending[id] = ch
	be.mu.Unlock()
	m.ID = id
	if err := be.conn.Send(m); err != nil {
		be.unpend(id)
		return nil, err
	}
	select {
	case r := <-ch:
		if r == nil {
			return nil, fmt.Errorf("broker: backend %s died mid-request", be.name)
		}
		return r, nil
	case <-be.goneCh:
		be.unpend(id)
		return nil, fmt.Errorf("broker: backend %s died mid-request", be.name)
	case <-time.After(timeout):
		be.unpend(id)
		return nil, fmt.Errorf("broker: %s to backend %s timed out", m.Cmd, be.name)
	}
}

func (be *backend) unpend(id int64) {
	be.mu.Lock()
	delete(be.pending, id)
	be.mu.Unlock()
}

func (be *backend) routeResp(m *protocol.Msg) {
	be.mu.Lock()
	ch := be.pending[m.ID]
	delete(be.pending, m.ID)
	be.mu.Unlock()
	if ch != nil {
		ch <- m
	}
}

// fail tears the backend link down and fails every pending request.
func (be *backend) fail() {
	be.failOne.Do(func() {
		be.mu.Lock()
		be.gone = true
		pending := be.pending
		be.pending = make(map[int64]chan *protocol.Msg)
		be.mu.Unlock()
		close(be.goneCh)
		for _, ch := range pending {
			ch <- nil
		}
		_ = be.conn.Close()
	})
}

// ---------------------------------------------------------------------------
// Sessions

// getOrHost returns the session, placing and hosting it on its ring
// owner if it does not exist yet. Concurrent attaches to the same new
// session share one hosting round trip.
func (bk *Broker) getOrHost(name string) (*session, error) {
	bk.mu.Lock()
	if bk.closed {
		bk.mu.Unlock()
		return nil, errors.New("broker: shutting down")
	}
	if bk.standby {
		bk.mu.Unlock()
		return nil, errors.New("broker: standby, not serving clients")
	}
	if s := bk.sessions[name]; s != nil {
		bk.mu.Unlock()
		<-s.ready
		s.mu.Lock()
		err, closed := s.hostErr, s.closed
		s.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if closed {
			return nil, fmt.Errorf("broker: session %s is closed", name)
		}
		return s, nil
	}
	owner := bk.ring.owner(name)
	be := bk.backends[owner]
	if be == nil {
		bk.mu.Unlock()
		return nil, errNoBackend
	}
	s := &session{
		name:    name,
		ready:   make(chan struct{}),
		clients: make(map[string]*clientAtt),
	}
	bk.sessions[name] = s
	bk.mu.Unlock()

	resp, err := be.request(&protocol.Msg{Kind: "req", Cmd: protocol.CmdHostSession, Session: name}, bk.opts.HostTimeout)
	if err == nil && resp.Err != "" {
		err = errors.New(resp.Err)
	}
	if err != nil {
		s.mu.Lock()
		s.hostErr = fmt.Errorf("broker: hosting %s on %s: %w", name, be.name, err)
		err = s.hostErr
		s.mu.Unlock()
		close(s.ready)
		bk.mu.Lock()
		if bk.sessions[name] == s {
			delete(bk.sessions, name)
		}
		bk.mu.Unlock()
		return nil, err
	}
	s.mu.Lock()
	s.root = resp.PID
	s.backend = be
	s.mu.Unlock()
	close(s.ready)
	bk.opts.Logf("broker: session %q hosted on backend %q (root pid %d)", name, be.name, resp.PID)
	bk.placementChanged(name, be.name, resp.PID, "hosted")
	return s, nil
}

// fanout delivers one backend event to every source attachment's queue
// and records structural events for replay to late joiners.
func (bk *Broker) fanout(s *session, m *protocol.Msg) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if m.Cmd == protocol.EventForked && m.Child != 0 {
		s.replay = append(s.replay, m)
	}
	if replayCritical(m.Cmd) && len(s.critical) < maxPending {
		s.critical = append(s.critical, m)
	}
	for _, att := range s.clients {
		if att.q != nil {
			att.q.push(m)
		}
	}
	s.mu.Unlock()
}

// closeSession ends a session for every attachment: a final
// session_closed with the reason, then queues drain and connections
// close.
func (bk *Broker) closeSession(s *session, reason string) {
	bk.mu.Lock()
	if bk.sessions[s.name] == s {
		delete(bk.sessions, s.name)
	}
	bk.mu.Unlock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	final := &protocol.Msg{Kind: "event", Cmd: protocol.EventSessionClosed, Session: s.name, PID: s.root, Reason: reason}
	// Snapshot the per-attachment conns/queues under the lock: detach
	// paths clear these fields concurrently.
	type attRef struct {
		q   *eventQueue
		cmd *protocol.Conn
	}
	refs := make([]attRef, 0, len(s.clients))
	for _, att := range s.clients {
		refs = append(refs, attRef{q: att.q, cmd: att.cmd})
	}
	s.mu.Unlock()
	bk.opts.Logf("broker: session %q closed: %s", s.name, reason)
	bk.placementChanged(s.name, "", final.PID, "closed")
	for _, r := range refs {
		if r.q != nil {
			r.q.push(final)
			r.q.close()
		}
		if r.cmd != nil {
			_ = r.cmd.Close()
		}
	}
}

// ---------------------------------------------------------------------------
// Clients

// readonlyCmd is the observer allowlist: commands that inspect the
// debuggee without perturbing it.
func readonlyCmd(cmd string) bool {
	switch cmd {
	case protocol.CmdThreads, protocol.CmdStack, protocol.CmdVars,
		protocol.CmdEval, protocol.CmdSource, protocol.CmdBreaks,
		protocol.CmdPing, protocol.CmdSessionsAll, protocol.CmdStuck:
		return true
	}
	return false
}

// serveClientCmd runs one client command connection: grant a role,
// answer pings locally, reject control from observers, forward the rest
// to the session's backend with correlation-ID rewriting.
func (bk *Broker) serveClientCmd(conn *protocol.Conn, at *protocol.Msg) {
	s, err := bk.getOrHost(at.Session)
	if err != nil {
		_ = conn.Send(&protocol.Msg{Kind: "resp", ID: at.ID, Cmd: at.Cmd, Err: err.Error()})
		_ = conn.Close()
		return
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = conn.Send(&protocol.Msg{Kind: "resp", ID: at.ID, Cmd: at.Cmd, Err: "session closed"})
		_ = conn.Close()
		return
	}
	att := s.clients[at.Text]
	if att == nil {
		s.seq++
		att = &clientAtt{name: at.Text, seq: s.seq}
		s.clients[at.Text] = att
	}
	att.cmd = conn
	att.wantsControl = at.Role == protocol.RoleController
	if att.wantsControl && s.controllerLocked() == nil {
		att.controller.Store(true)
	}
	granted := protocol.RoleObserver
	if att.controller.Load() {
		granted = protocol.RoleController
	}
	root := s.root
	s.mu.Unlock()
	if err := conn.Send(&protocol.Msg{Kind: "resp", ID: at.ID, Cmd: at.Cmd, OK: true, PID: root, Session: s.name, Role: granted}); err != nil {
		bk.detachCmd(s, att, conn)
		return
	}
	for {
		m, err := conn.Recv()
		if err != nil {
			bk.detachCmd(s, att, conn)
			return
		}
		switch {
		case m.Cmd == protocol.CmdPing:
			_ = conn.Send(&protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd, OK: true})
		case m.Cmd == protocol.CmdDetach:
			// Detaching one client must not detach the backend: other
			// observers keep their session.
			_ = conn.Send(&protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd, OK: true})
		case !att.isController() && !readonlyCmd(m.Cmd):
			_ = conn.Send(&protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd, Err: "observer attachment is read-only"})
		// Fabric-level commands are answered by the broker itself, not
		// forwarded: only the broker sees every backend and session.
		case m.Cmd == protocol.CmdMigrate:
			go bk.handleMigrate(s, conn, m)
		case m.Cmd == protocol.CmdDrain:
			go bk.handleDrain(conn, m)
		case m.Cmd == protocol.CmdSessionsAll:
			go bk.handleSessionsAll(conn, m)
		case m.Cmd == protocol.CmdStuck:
			go bk.handleStuck(conn, m)
		default:
			// Forward concurrently: a slow backend round trip must not
			// block this client's heartbeat pings.
			go bk.forward(s, conn, m)
		}
	}
}

func (s *session) controllerLocked() *clientAtt {
	for _, att := range s.clients {
		if att.controller.Load() {
			return att
		}
	}
	return nil
}

func (att *clientAtt) isController() bool {
	// att.controller is only mutated under the session lock; this
	// lock-free read can observe a concurrent promotion or detach either
	// way, which is fine (a just-promoted client retries), but the read
	// itself must be atomic to be defined at all.
	return att.controller.Load()
}

// forward relays one client request to the session's backend, rewriting
// the correlation ID both ways.
func (bk *Broker) forward(s *session, conn *protocol.Conn, m *protocol.Msg) {
	origID := m.ID
	s.mu.Lock()
	be := s.backend
	s.mu.Unlock()
	var resp *protocol.Msg
	var err error
	if be == nil {
		err = errors.New("backend unavailable (failing over)")
	} else {
		resp, err = be.request(m, 10*time.Second)
	}
	if err != nil {
		resp = &protocol.Msg{Kind: "resp", Cmd: m.Cmd, Err: err.Error()}
	}
	resp.ID = origID
	_ = conn.Send(resp)
}

// detachCmd removes a command attachment; if it held control, the
// oldest standby that asked for control is promoted.
func (bk *Broker) detachCmd(s *session, att *clientAtt, conn *protocol.Conn) {
	_ = conn.Close()
	s.mu.Lock()
	if att.cmd != conn {
		s.mu.Unlock()
		return
	}
	att.cmd = nil
	wasController := att.controller.Load()
	att.controller.Store(false)
	if att.q == nil {
		delete(s.clients, att.name)
	}
	var promoted *clientAtt
	var lost []*eventQueue
	if wasController && !s.closed {
		for _, cand := range s.clients {
			if cand.wantsControl && cand.cmd != nil && (promoted == nil || cand.seq < promoted.seq) {
				promoted = cand
			}
		}
		if promoted != nil {
			promoted.controller.Store(true)
		}
		for _, other := range s.clients {
			if other != promoted && other.q != nil {
				lost = append(lost, other.q)
			}
		}
	}
	name, root := s.name, s.root
	s.mu.Unlock()
	if wasController {
		for _, q := range lost {
			q.push(&protocol.Msg{Kind: "event", Cmd: protocol.EventControllerLost, Session: name, PID: root})
		}
		if promoted != nil {
			bk.opts.Logf("broker: session %q controller handed over to %q", name, promoted.name)
			if promoted.q != nil {
				promoted.q.push(&protocol.Msg{Kind: "event", Cmd: protocol.EventControllerGranted, Session: name, PID: root, Role: protocol.RoleController})
			}
		}
	}
}

// serveClientSrc runs one client source connection: replay the
// session's structure, then stream events through a bounded queue. The
// session must already exist — source channels never trigger hosting,
// so a reconnect after failover fails cleanly instead of resurrecting
// the session.
func (bk *Broker) serveClientSrc(conn *protocol.Conn, at *protocol.Msg) {
	bk.mu.Lock()
	s := bk.sessions[at.Session]
	bk.mu.Unlock()
	if s == nil {
		_ = conn.Send(&protocol.Msg{Kind: "resp", ID: at.ID, Cmd: at.Cmd, Err: "unknown session " + at.Session})
		_ = conn.Close()
		return
	}
	<-s.ready
	promoted := bk.wasPromoted()
	s.mu.Lock()
	if s.hostErr != nil || s.closed {
		s.mu.Unlock()
		_ = conn.Send(&protocol.Msg{Kind: "resp", ID: at.ID, Cmd: at.Cmd, Err: "session closed"})
		_ = conn.Close()
		return
	}
	att := s.clients[at.Text]
	if att == nil {
		s.seq++
		att = &clientAtt{name: at.Text, seq: s.seq}
		s.clients[at.Text] = att
	}
	if att.q != nil {
		// A reconnecting source channel replaces the old one.
		att.q.close()
		if att.src != nil {
			_ = att.src.Close()
		}
	}
	q := newEventQueue(bk.opts.QueueLen)
	att.q = q
	att.src = conn
	for _, m := range s.replay {
		q.push(m)
	}
	// Terminal facts the client may have missed while detached (or
	// failing over between brokers) come next, before any live event.
	for _, m := range s.critical {
		q.push(m)
	}
	if promoted {
		q.push(&protocol.Msg{Kind: "event", Cmd: protocol.EventBrokerPromoted, Session: s.name, PID: s.root, Text: bk.opts.Name})
	}
	granted := protocol.RoleObserver
	if att.controller.Load() {
		granted = protocol.RoleController
	}
	root := s.root
	s.mu.Unlock()
	if err := conn.Send(&protocol.Msg{Kind: "resp", ID: at.ID, Cmd: at.Cmd, OK: true, PID: root, Session: s.name, Role: granted}); err != nil {
		bk.detachSrc(s, att, q, conn)
		return
	}
	// Writer: drain the queue onto the socket. The write deadline set at
	// accept time converts a wedged client into a detach.
	go func() {
		for {
			m, ok := q.pop()
			if !ok {
				_ = conn.Close()
				return
			}
			if err := conn.Send(m); err != nil {
				bk.detachSrc(s, att, q, conn)
				return
			}
		}
	}()
	// Reader: the client never sends on the source channel; this read
	// exists to notice the disconnect.
	for {
		if _, err := conn.Recv(); err != nil {
			bk.detachSrc(s, att, q, conn)
			return
		}
	}
}

func (bk *Broker) detachSrc(s *session, att *clientAtt, q *eventQueue, conn *protocol.Conn) {
	q.close()
	_ = conn.Close()
	s.mu.Lock()
	if att.q == q {
		att.q = nil
		att.src = nil
		if att.cmd == nil {
			delete(s.clients, att.name)
		}
	}
	s.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Introspection

// Stats is a point-in-time snapshot of the fabric, for tests and the
// broker's own logging.
type Stats struct {
	Backends int
	Sessions int
	Clients  int
	// QueueHighWater is the deepest any attachment queue has been;
	// EventsDropped counts evictions across all queues. Both cover only
	// currently-attached clients.
	QueueHighWater int
	EventsDropped  uint64
	// Standby is true while this broker replicates a primary and
	// rejects clients; Promoted is true once a standby took over.
	Standby  bool
	Promoted bool
}

func (bk *Broker) Stats() Stats {
	bk.mu.Lock()
	sessions := make([]*session, 0, len(bk.sessions))
	for _, s := range bk.sessions {
		sessions = append(sessions, s)
	}
	st := Stats{Backends: len(bk.backends), Sessions: len(sessions), Standby: bk.standby, Promoted: bk.promoted}
	bk.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		st.Clients += len(s.clients)
		for _, att := range s.clients {
			if att.q != nil {
				hw, dropped := att.q.stats()
				if hw > st.QueueHighWater {
					st.QueueHighWater = hw
				}
				st.EventsDropped += dropped
			}
		}
		s.mu.Unlock()
	}
	return st
}
