// Fabric stress: a thousand debug sessions multiplexed across four
// backends through one broker, every one a real kernel behind real
// loopback sockets. The point is the resource model — bounded
// per-client queues, a handful of broker↔backend links, no per-session
// broker goroutine explosion — not event throughput (each session
// parks at entry and is never released).
package broker_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dionea/internal/broker"
	"dionea/internal/client"
	"dionea/internal/protocol"
)

func TestFabricStressThousandSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const queueLen = 64
	bk, backends := fabric(t, stressBackends, "sleep(60)", broker.Options{
		QueueLen:    queueLen,
		HostTimeout: 30 * time.Second,
	})

	start := time.Now()
	clients := make([]*client.Client, stressSessions)
	var wg sync.WaitGroup
	sem := make(chan struct{}, 64) // bound concurrent attach handshakes
	var mu sync.Mutex
	var firstErr error
	for i := range clients {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c, err := client.NewBroker(bk.Addr(), fmt.Sprintf("stress-%d", i), protocol.RoleController, client.Options{})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("session stress-%d: %w", i, err)
				}
				mu.Unlock()
				return
			}
			clients[i] = c
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	t.Logf("hosted %d sessions across %d backends in %v", stressSessions, stressBackends, time.Since(start))

	st := bk.Stats()
	if st.Sessions != stressSessions {
		t.Fatalf("broker hosts %d sessions; want %d", st.Sessions, stressSessions)
	}
	if st.Clients != stressSessions {
		t.Fatalf("broker sees %d clients; want %d", st.Clients, stressSessions)
	}
	total := 0
	for i, be := range backends {
		n := be.Hosted()
		if n == 0 {
			t.Fatalf("backend be%d hosts no sessions — placement is broken", i)
		}
		total += n
		t.Logf("be%d hosts %d sessions", i, n)
	}
	if total != stressSessions {
		t.Fatalf("backends host %d sessions in total; want %d", total, stressSessions)
	}
	// Bounded memory: no client queue ever grew past its bound (plus
	// the never-shed critical-event allowance).
	if st.QueueHighWater > queueLen+4 {
		t.Fatalf("queue high-water %d exceeded bound %d", st.QueueHighWater, queueLen)
	}

	// Every controller can still round-trip a request through its
	// backend — spot-check a spread, not all thousand.
	for i := 0; i < len(clients); i += len(clients) / 16 {
		c := clients[i]
		root := c.Sessions()[0]
		if _, err := c.Threads(root); err != nil {
			t.Fatalf("session stress-%d threads: %v", i, err)
		}
	}

	// Tear the clients down in waves; the broker must survive mass
	// disconnection without stalling.
	for lo := 0; lo < len(clients); lo += 100 {
		hi := lo + 100
		if hi > len(clients) {
			hi = len(clients)
		}
		var cwg sync.WaitGroup
		for _, c := range clients[lo:hi] {
			cwg.Add(1)
			go func(c *client.Client) {
				defer cwg.Done()
				c.Close()
			}(c)
		}
		cwg.Wait()
	}
	waitFor(t, 10*time.Second, func() bool { return bk.Stats().Clients == 0 }, "all clients detached")
}
