// Per-attachment bounded event queue: the backpressure boundary between
// the backend's event stream and each client's socket. push never
// blocks — a slow observer sheds load here instead of stalling the
// backend read loop (and with it every other client of that backend).
//
// Overflow policy: evict the oldest *coalescible* event first (source
// refreshes and output lines, which the client renders as
// last-write-wins or a scrolling tail anyway); if none, evict the
// oldest non-critical event. Critical events — the terminal and
// role-change signals a client must never miss (process_exited,
// session_closed, controller handover) — are never evicted; if the
// buffer is all critical, push appends past the bound instead. That
// overshoot is still bounded: a session emits only a handful of
// critical events over its whole life. Every eviction is counted and
// announced in-stream with an events_dropped marker carrying the
// count, so an observer always knows its view has gaps — silence never
// masquerades as completeness.
package broker

import (
	"sync"

	"dionea/internal/protocol"
)

type eventQueue struct {
	mu      sync.Mutex
	buf     []*protocol.Msg
	max     int
	dropped uint64 // evictions not yet announced to this client
	closed  bool
	wake    chan struct{} // 1-buffered: pop parks here when empty

	// Stats for tests and the broker's introspection.
	highWater    int
	totalDropped uint64
}

func newEventQueue(max int) *eventQueue {
	if max < 2 {
		max = 2
	}
	return &eventQueue{max: max, wake: make(chan struct{}, 1)}
}

func coalescible(cmd string) bool {
	return cmd == protocol.EventOutput || cmd == protocol.EventSourceSync
}

// critical events may never be shed: dropping one leaves the client
// believing a session is still alive, or holding a stale role.
func critical(cmd string) bool {
	switch cmd {
	case protocol.EventProcessExited, protocol.EventSessionClosed,
		protocol.EventControllerGranted, protocol.EventControllerLost,
		protocol.EventSessionReconnected, protocol.EventBrokerPromoted,
		protocol.EventSessionMigrated:
		return true
	}
	return false
}

// push enqueues m, evicting per the overflow policy if the queue is
// full. It never blocks.
func (q *eventQueue) push(m *protocol.Msg) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	if len(q.buf) >= q.max {
		victim := -1
		for i, e := range q.buf {
			if coalescible(e.Cmd) {
				victim = i
				break
			}
		}
		if victim < 0 {
			for i, e := range q.buf {
				if !critical(e.Cmd) {
					victim = i
					break
				}
			}
		}
		if victim >= 0 {
			copy(q.buf[victim:], q.buf[victim+1:])
			q.buf = q.buf[:len(q.buf)-1]
			q.dropped++
			q.totalDropped++
		}
	}
	q.buf = append(q.buf, m)
	if len(q.buf) > q.highWater {
		q.highWater = len(q.buf)
	}
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

// pop blocks until an event is available or the queue is closed. When
// evictions happened since the last pop, the drop marker is delivered
// first so the gap is announced before the events that follow it.
func (q *eventQueue) pop() (*protocol.Msg, bool) {
	for {
		q.mu.Lock()
		if q.dropped > 0 {
			n := q.dropped
			q.dropped = 0
			q.mu.Unlock()
			// Dropped is the dedicated count field; Seq mirrors it for
			// clients that predate it.
			return &protocol.Msg{Kind: "event", Cmd: protocol.EventEventsDropped, Seq: n, Dropped: n}, true
		}
		if len(q.buf) > 0 {
			m := q.buf[0]
			q.buf = q.buf[1:]
			q.mu.Unlock()
			return m, true
		}
		if q.closed {
			q.mu.Unlock()
			return nil, false
		}
		q.mu.Unlock()
		<-q.wake
	}
}

// close stops accepting events and wakes any parked pop. Events
// already queued still drain: closeSession relies on a final
// session_closed pushed just before close reaching the client.
func (q *eventQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
}

func (q *eventQueue) stats() (highWater int, totalDropped uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.highWater, q.totalDropped
}
