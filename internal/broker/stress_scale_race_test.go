//go:build race

package broker_test

// Race builds host fewer sessions: the race runtime caps live
// goroutines at 8192, and each hosted session costs a dozen on each
// side of the wire (kernel, server, internal client, controller).
const (
	stressSessions = 200
	stressBackends = 4
)
