// Cross-session queries (DESIGN §8): the broker is the only vantage
// point that sees every session in the fabric, so it answers
// sessions_all (placement table) locally and stuck (health verdicts)
// by fanning CmdHealth across its backends and aggregating the rows.
// Both are observer-allowed: watching fleet health must not require
// taking control of anything.

package broker

import (
	"fmt"
	"sort"
	"time"

	"dionea/internal/protocol"
)

// handleSessionsAll renders the fabric's placement table. Rows:
// "session|backend|root-pid|clients".
func (bk *Broker) handleSessionsAll(conn *protocol.Conn, m *protocol.Msg) {
	bk.mu.Lock()
	sessions := make([]*session, 0, len(bk.sessions))
	for _, s := range bk.sessions {
		sessions = append(sessions, s)
	}
	bk.mu.Unlock()
	rows := make([]string, 0, len(sessions))
	for _, s := range sessions {
		s.mu.Lock()
		if !s.closed {
			beName := "-"
			if s.backend != nil {
				beName = s.backend.name
			}
			rows = append(rows, fmt.Sprintf("%s|%s|%d|%d", s.name, beName, s.root, len(s.clients)))
		}
		s.mu.Unlock()
	}
	sort.Strings(rows)
	_ = conn.Send(&protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd, OK: true, Rows: rows})
}

// handleStuck fans a health probe across every backend. Each backend
// answers "session|verdict|detail|gil-switches" per hosted session;
// the broker prefixes the backend name. A backend that cannot answer
// is itself reported as a row, so silence never reads as health.
func (bk *Broker) handleStuck(conn *protocol.Conn, m *protocol.Msg) {
	bk.mu.Lock()
	backends := make([]*backend, 0, len(bk.backends))
	for _, be := range bk.backends {
		backends = append(backends, be)
	}
	bk.mu.Unlock()
	var rows []string
	for _, be := range backends {
		resp, err := be.request(&protocol.Msg{Kind: "req", Cmd: protocol.CmdHealth}, 5*time.Second)
		if err != nil {
			rows = append(rows, fmt.Sprintf("%s|-|unreachable|%v|0", be.name, err))
			continue
		}
		for _, r := range resp.Rows {
			rows = append(rows, be.name+"|"+r)
		}
	}
	sort.Strings(rows)
	_ = conn.Send(&protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd, OK: true, Rows: rows})
}
