// Broker replication: the HA half of the fabric (DESIGN §8).
//
// A standby broker starts with Options.Primary set. Backends register
// with every broker in the fabric, so the standby already holds live
// backend links and sees every session event; what it cannot derive on
// its own is *placement* — which sessions exist and which backend hosts
// them — so the primary streams that over a replication link
// (CmdReplicate handshake, then CmdPlacement updates). While the
// primary lives, the standby rejects clients. When the replication
// link dies and stays dead for PromoteAfter, the standby promotes:
// it materializes sessions from the replicated placements, re-binding
// each to its (already registered) backend, and starts serving clients.
// Sessions whose backend died with the primary get the usual rehost
// grace, backed by the last replicated checkpoint (migrate.go).
//
// Events the standby sees for sessions it has not materialized yet are
// not discarded wholesale: structural history (forked) and terminal
// facts (process_exited, deadlock) are buffered per placement, so a
// client that fails over to the just-promoted standby still learns its
// process died even if it died during the failover window. That is the
// "no critical event lost" half of the HA contract.

package broker

import (
	"net"
	"time"

	"dionea/internal/protocol"
)

// placement is the standby's view of one session: enough to re-adopt
// it at promotion time.
type placement struct {
	backend string
	root    int64
	// pending buffers structural and terminal events seen before the
	// session exists here; split into replay/critical at promotion.
	pending []*protocol.Msg
	// ckpt is the newest checkpoint event the hosting backend pushed —
	// the restore source if the backend dies with the primary.
	ckpt *protocol.Msg
}

// maxPending bounds the per-placement pre-promotion buffer. Forked and
// terminal events are rare (a handful per session); the cap only guards
// against a pathological fork storm.
const maxPending = 64

// replayCritical picks the events worth replaying to a late or failed-
// over source attachment: terminal facts a client must never miss.
// Role-change events (controller_granted/lost) are deliberately
// excluded — replaying a stale grant to a different client would hand
// out phantom control.
func replayCritical(cmd string) bool {
	switch cmd {
	case protocol.EventProcessExited, protocol.EventDeadlock,
		protocol.EventSessionMigrated:
		return true
	}
	return false
}

func (bk *Broker) isStandby() bool {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return bk.standby
}

func (bk *Broker) wasPromoted() bool {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	return bk.promoted
}

// ---------------------------------------------------------------------------
// Primary side

// serveRepl handles a standby's replication subscription: dump the
// current placements, then stream updates (placementChanged) and pings
// until the link dies.
func (bk *Broker) serveRepl(conn *protocol.Conn, m *protocol.Msg) {
	bk.mu.Lock()
	if bk.closed || bk.standby {
		bk.mu.Unlock()
		_ = conn.Send(&protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd, Err: "broker is not accepting replication"})
		_ = conn.Close()
		return
	}
	bk.repls[conn] = true
	snap := make([]*protocol.Msg, 0, len(bk.sessions))
	for name, s := range bk.sessions {
		s.mu.Lock()
		if !s.closed {
			beName := ""
			if s.backend != nil {
				beName = s.backend.name
			}
			snap = append(snap, &protocol.Msg{Kind: "event", Cmd: protocol.CmdPlacement, Session: name, Text: beName, PID: s.root, Reason: "hosted"})
		}
		s.mu.Unlock()
	}
	bk.mu.Unlock()
	if err := conn.Send(&protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd, OK: true, Text: bk.opts.Name}); err != nil {
		bk.dropRepl(conn)
		return
	}
	for _, p := range snap {
		if err := conn.Send(p); err != nil {
			bk.dropRepl(conn)
			return
		}
	}
	bk.opts.Logf("broker: standby %q subscribed to replication (%d placements)", m.Text, len(snap))
	// Heartbeat writer: keeps the standby's reads moving so a silent
	// link is indistinguishable from a dead one only for as long as the
	// standby's read window.
	stop := make(chan struct{})
	go func() {
		t := time.NewTicker(bk.opts.PingInterval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			if err := conn.Send(&protocol.Msg{Kind: "event", Cmd: protocol.CmdPing}); err != nil {
				_ = conn.Close()
				return
			}
		}
	}()
	for {
		if _, err := conn.Recv(); err != nil {
			break
		}
	}
	close(stop)
	bk.dropRepl(conn)
}

func (bk *Broker) dropRepl(conn *protocol.Conn) {
	bk.mu.Lock()
	delete(bk.repls, conn)
	bk.mu.Unlock()
	_ = conn.Close()
}

// placementChanged broadcasts one placement update to every replication
// subscriber. reason is "hosted", "migrated" or "closed".
func (bk *Broker) placementChanged(session, backendName string, root int64, reason string) {
	bk.mu.Lock()
	conns := make([]*protocol.Conn, 0, len(bk.repls))
	for c := range bk.repls {
		conns = append(conns, c)
	}
	bk.mu.Unlock()
	if len(conns) == 0 {
		return
	}
	m := &protocol.Msg{Kind: "event", Cmd: protocol.CmdPlacement, Session: session, Text: backendName, PID: root, Reason: reason}
	for _, c := range conns {
		if err := c.Send(m); err != nil {
			// serveRepl's read loop notices the close and unsubscribes.
			_ = c.Close()
		}
	}
}

// ---------------------------------------------------------------------------
// Standby side

// runStandby keeps the replication link up and promotes once it has
// been down — redials included — for PromoteAfter.
func (bk *Broker) runStandby() {
	var downSince time.Time
	for {
		bk.mu.Lock()
		closed, standby := bk.closed, bk.standby
		bk.mu.Unlock()
		if closed || !standby {
			return
		}
		if bk.replicateOnce() {
			// The link was up and then died; the promotion clock starts
			// fresh — a healthy primary restart must not trigger promotion.
			downSince = time.Time{}
			continue
		}
		if downSince.IsZero() {
			downSince = time.Now()
		}
		if time.Since(downSince) >= bk.opts.PromoteAfter {
			bk.promote()
			return
		}
		time.Sleep(bk.opts.PromoteAfter / 20)
	}
}

// replicateOnce dials the primary, subscribes, and consumes placement
// updates until the link dies. It returns true if the subscription
// handshake succeeded (the primary was alive), false if the primary was
// unreachable or rejected us.
func (bk *Broker) replicateOnce() bool {
	nc, err := net.DialTimeout("tcp", bk.opts.Primary, bk.opts.PromoteAfter/4+50*time.Millisecond)
	if err != nil {
		return false
	}
	conn := protocol.NewConn(nc)
	conn.SetWriteTimeout(bk.opts.WriteTimeout)
	conn.SetReadTimeout(bk.opts.PromoteAfter + time.Second)
	if err := conn.Send(&protocol.Msg{Kind: "req", ID: 1, Cmd: protocol.CmdReplicate, Text: bk.opts.Name}); err != nil {
		_ = conn.Close()
		return false
	}
	resp, err := conn.Recv()
	if err != nil || resp.Err != "" {
		_ = conn.Close()
		return false
	}
	bk.opts.Logf("broker: standby %q replicating from %s", bk.opts.Name, bk.opts.Primary)
	// The primary pings every PingInterval; a link quiet for longer than
	// the larger of the promotion window and a few ping periods is dead.
	quiet := bk.opts.PromoteAfter
	if min := 4 * bk.opts.PingInterval; quiet < min {
		quiet = min
	}
	conn.SetReadTimeout(quiet)
	for {
		m, err := conn.Recv()
		if err != nil {
			_ = conn.Close()
			return true
		}
		if m.Cmd == protocol.CmdPlacement {
			bk.applyPlacement(m)
		}
	}
}

func (bk *Broker) applyPlacement(m *protocol.Msg) {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if !bk.standby {
		return
	}
	if m.Reason == "closed" {
		delete(bk.placements, m.Session)
		return
	}
	pl := bk.placements[m.Session]
	if pl == nil {
		pl = &placement{}
		bk.placements[m.Session] = pl
	}
	pl.backend = m.Text
	if m.PID != 0 {
		pl.root = m.PID
	}
}

// standbyBuffer captures what a pre-promotion standby must remember
// from a backend event for a session it has not materialized: forked
// structure, terminal facts, and checkpoints.
func (bk *Broker) standbyBuffer(be *backend, m *protocol.Msg) {
	bk.mu.Lock()
	defer bk.mu.Unlock()
	if !bk.standby {
		return
	}
	pl := bk.placements[m.Session]
	if pl == nil {
		pl = &placement{}
		bk.placements[m.Session] = pl
	}
	if pl.backend == "" {
		// The event arrived over this backend's link: it hosts the
		// session, whatever the (possibly lagging) placement stream says.
		pl.backend = be.name
	}
	switch {
	case m.Cmd == protocol.CmdCheckpoint:
		pl.ckpt = m
	case m.Cmd == protocol.EventForked && m.Child != 0,
		replayCritical(m.Cmd):
		if len(pl.pending) < maxPending {
			pl.pending = append(pl.pending, m)
		}
	}
}

// promote turns the standby into the primary: materialize a session
// per replicated placement, re-bind each to its registered backend, and
// start the rehost grace for sessions whose backend is gone.
func (bk *Broker) promote() {
	bk.mu.Lock()
	if bk.closed || !bk.standby {
		bk.mu.Unlock()
		return
	}
	bk.standby = false
	bk.promoted = true
	adopted := 0
	var orphans []*session
	var lostFrom []string
	for name, pl := range bk.placements {
		if bk.sessions[name] != nil {
			continue
		}
		s := &session{
			name:     name,
			ready:    make(chan struct{}),
			clients:  make(map[string]*clientAtt),
			root:     pl.root,
			backend:  bk.backends[pl.backend],
			lastCkpt: pl.ckpt,
		}
		for _, m := range pl.pending {
			if m.Cmd == protocol.EventForked {
				s.replay = append(s.replay, m)
			} else {
				s.critical = append(s.critical, m)
			}
		}
		close(s.ready)
		bk.sessions[name] = s
		adopted++
		if s.backend == nil {
			orphans = append(orphans, s)
			lostFrom = append(lostFrom, pl.backend)
		}
	}
	bk.placements = make(map[string]*placement)
	bk.mu.Unlock()
	bk.opts.Logf("broker: %q promoted to primary (%d sessions adopted, %d orphaned)", bk.opts.Name, adopted, len(orphans))
	for i, s := range orphans {
		bk.orphanGrace(s, lostFrom[i])
	}
}

// orphanGrace gives a backend-less session RehostGrace for its backend
// to re-register before the session is declared lost (at which point
// migrate.go tries a checkpoint restore before giving up).
func (bk *Broker) orphanGrace(s *session, backendName string) {
	bk.opts.Logf("broker: session %q orphaned by backend %q, grace %v", s.name, backendName, bk.opts.RehostGrace)
	time.AfterFunc(bk.opts.RehostGrace, func() {
		s.mu.Lock()
		lost := !s.closed && s.backend == nil
		s.mu.Unlock()
		if lost {
			bk.sessionLost(s, backendName)
		}
	})
}

// Kill stops the broker the way a crash would: the listener and every
// connection drop with no graceful session_closed fan-out. Tests and
// the HA soak use it to stand in for the primary process dying.
func (bk *Broker) Kill() {
	bk.mu.Lock()
	if bk.closed {
		bk.mu.Unlock()
		return
	}
	bk.closed = true
	backends := make([]*backend, 0, len(bk.backends))
	for _, be := range bk.backends {
		backends = append(backends, be)
	}
	sessions := make([]*session, 0, len(bk.sessions))
	for _, s := range bk.sessions {
		sessions = append(sessions, s)
	}
	repls := make([]*protocol.Conn, 0, len(bk.repls))
	for c := range bk.repls {
		repls = append(repls, c)
	}
	bk.mu.Unlock()
	_ = bk.ln.Close()
	for _, be := range backends {
		be.fail()
	}
	for _, c := range repls {
		_ = c.Close()
	}
	for _, s := range sessions {
		s.mu.Lock()
		s.closed = true
		for _, att := range s.clients {
			if att.cmd != nil {
				_ = att.cmd.Close()
			}
			if att.src != nil {
				_ = att.src.Close()
			}
			if att.q != nil {
				att.q.close()
			}
		}
		s.mu.Unlock()
	}
}
