// Consistent-hash placement of debug sessions on backends. Each backend
// contributes a fixed number of virtual nodes to a sorted ring; a
// session lands on the first vnode clockwise of its hash. Adding or
// removing one backend only moves the sessions that hashed to its
// vnodes — the rest of the fabric is undisturbed, which is what makes
// failover re-hosting cheap.
package broker

import "sort"

const vnodesPerBackend = 64

type vnode struct {
	hash uint64
	name string
}

type ring struct {
	nodes []vnode
}

// hash64 is FNV-1a with a splitmix64 finalizer: FNV alone clusters
// short, similar keys ("be0", "be1", ...); the finalizer scatters them.
func hash64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// buildRing places vnodesPerBackend virtual nodes per name. Ties (hash
// collisions across backends) break by name so the ring is
// deterministic regardless of registration order.
func buildRing(names []string) *ring {
	r := &ring{nodes: make([]vnode, 0, len(names)*vnodesPerBackend)}
	for _, n := range names {
		for i := 0; i < vnodesPerBackend; i++ {
			r.nodes = append(r.nodes, vnode{hash: hash64(n + "#" + itoa(i)), name: n})
		}
	}
	sort.Slice(r.nodes, func(i, j int) bool {
		if r.nodes[i].hash != r.nodes[j].hash {
			return r.nodes[i].hash < r.nodes[j].hash
		}
		return r.nodes[i].name < r.nodes[j].name
	})
	return r
}

// owner returns the backend owning key, or "" on an empty ring.
func (r *ring) owner(key string) string {
	if len(r.nodes) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.nodes), func(i int) bool { return r.nodes[i].hash >= h })
	if i == len(r.nodes) {
		i = 0
	}
	return r.nodes[i].name
}

// itoa avoids pulling strconv into the hot hash path for two-digit
// vnode indices.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
