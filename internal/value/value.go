// Package value defines pint runtime values and the deep-copy machinery
// used by the simulated fork(2): forking a process copies its entire object
// graph (globals, environments, lists, dicts, closures) while preserving
// aliasing *within* the copy and sharing nothing with the parent — exactly
// the memory semantics a real fork gives a real interpreter.
//
// The Value interface is open: other packages add their own value types
// (builtins, bound methods, mutexes, queues, pipe ends). A type controls
// its fork behaviour by implementing Copier; types that do not are treated
// as immutable and shared.
package value

import (
	"fmt"
	"sort"
	"strings"

	"dionea/internal/bytecode"
)

// Value is any pint runtime value.
type Value interface {
	// TypeName is the user-visible type name ("int", "list", "queue", ...).
	TypeName() string
	// Truthy reports the boolean interpretation (nil and false are falsy;
	// everything else, including 0 and "", is truthy, as in Ruby).
	Truthy() bool
	// String renders the value for print/inspection.
	String() string
}

// Memo tracks already-copied reference objects during a fork deep copy so
// aliasing inside the copied graph is preserved and cycles terminate.
type Memo map[interface{}]Value

// Copier is implemented by mutable or resource-like values that need
// special treatment when a process forks. In-process objects (lists,
// dicts, mutexes, inter-thread queues) return an independent copy;
// inherited kernel resources (pipe ends) return a new handle that shares
// the underlying kernel object, like a dup'ed file descriptor.
type Copier interface {
	Value
	DeepCopy(m Memo) Value
}

// DeepCopy copies v for a fork. Non-Copier values are immutable and
// returned as-is.
func DeepCopy(v Value, m Memo) Value {
	if v == nil {
		return nil
	}
	if c, ok := v.(Copier); ok {
		return c.DeepCopy(m)
	}
	return v
}

// ---- scalars ----

// Nil is the single nil value.
type Nil struct{}

// TypeName implements Value.
func (Nil) TypeName() string { return "nil" }

// Truthy implements Value.
func (Nil) Truthy() bool { return false }

func (Nil) String() string { return "nil" }

// NilV is the canonical nil.
var NilV = Nil{}

// Bool is a boolean value.
type Bool bool

// TypeName implements Value.
func (Bool) TypeName() string { return "bool" }

// Truthy implements Value.
func (b Bool) Truthy() bool { return bool(b) }

func (b Bool) String() string {
	if b {
		return "true"
	}
	return "false"
}

// Int is a 64-bit integer.
type Int int64

// TypeName implements Value.
func (Int) TypeName() string { return "int" }

// Truthy implements Value.
func (Int) Truthy() bool { return true }

func (i Int) String() string { return fmt.Sprintf("%d", int64(i)) }

// Float is a 64-bit float.
type Float float64

// TypeName implements Value.
func (Float) TypeName() string { return "float" }

// Truthy implements Value.
func (Float) Truthy() bool { return true }

func (f Float) String() string { return fmt.Sprintf("%g", float64(f)) }

// Str is an immutable string.
type Str string

// TypeName implements Value.
func (Str) TypeName() string { return "string" }

// Truthy implements Value.
func (Str) Truthy() bool { return true }

func (s Str) String() string { return string(s) }

// Repr renders a value the way it appears inside containers: strings are
// quoted, everything else uses String.
func Repr(v Value) string {
	if s, ok := v.(Str); ok {
		return fmt.Sprintf("%q", string(s))
	}
	if v == nil {
		return "nil"
	}
	return v.String()
}

// ---- containers ----

// List is a mutable ordered sequence.
type List struct {
	Elems []Value
}

// NewList builds a list from elems (the slice is taken over).
func NewList(elems ...Value) *List { return &List{Elems: elems} }

// TypeName implements Value.
func (*List) TypeName() string { return "list" }

// Truthy implements Value.
func (*List) Truthy() bool { return true }

func (l *List) String() string {
	parts := make([]string, len(l.Elems))
	for i, e := range l.Elems {
		parts[i] = Repr(e)
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// DeepCopy implements Copier.
func (l *List) DeepCopy(m Memo) Value {
	if c, ok := m[l]; ok {
		return c
	}
	nl := &List{Elems: make([]Value, len(l.Elems))}
	m[l] = nl
	for i, e := range l.Elems {
		nl.Elems[i] = DeepCopy(e, m)
	}
	return nl
}

// Key is a hashable dict key: string, int, float or bool.
type Key struct {
	Kind byte // 's', 'i', 'f', 'b'
	S    string
	I    int64
	F    float64
}

// KeyOf converts a value to a dict key.
func KeyOf(v Value) (Key, error) {
	switch x := v.(type) {
	case Str:
		return Key{Kind: 's', S: string(x)}, nil
	case Int:
		return Key{Kind: 'i', I: int64(x)}, nil
	case Float:
		return Key{Kind: 'f', F: float64(x)}, nil
	case Bool:
		k := Key{Kind: 'b'}
		if x {
			k.I = 1
		}
		return k, nil
	default:
		return Key{}, fmt.Errorf("unhashable key type %s", v.TypeName())
	}
}

// Value converts the key back to its value form.
func (k Key) Value() Value {
	switch k.Kind {
	case 's':
		return Str(k.S)
	case 'i':
		return Int(k.I)
	case 'f':
		return Float(k.F)
	default:
		return Bool(k.I != 0)
	}
}

// Dict is a mutable mapping with deterministic (insertion-order) iteration.
type Dict struct {
	m     map[Key]Value
	order []Key
}

// NewDict returns an empty dict.
func NewDict() *Dict { return &Dict{m: make(map[Key]Value)} }

// TypeName implements Value.
func (*Dict) TypeName() string { return "dict" }

// Truthy implements Value.
func (*Dict) Truthy() bool { return true }

func (d *Dict) String() string {
	parts := make([]string, 0, len(d.order))
	for _, k := range d.order {
		parts = append(parts, Repr(k.Value())+": "+Repr(d.m[k]))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Len returns the number of entries.
func (d *Dict) Len() int { return len(d.m) }

// Get looks up a key.
func (d *Dict) Get(k Key) (Value, bool) {
	v, ok := d.m[k]
	return v, ok
}

// Set inserts or updates a key.
func (d *Dict) Set(k Key, v Value) {
	if _, ok := d.m[k]; !ok {
		d.order = append(d.order, k)
	}
	d.m[k] = v
}

// Delete removes a key if present.
func (d *Dict) Delete(k Key) {
	if _, ok := d.m[k]; !ok {
		return
	}
	delete(d.m, k)
	for i, ok2 := range d.order {
		if ok2 == k {
			d.order = append(d.order[:i], d.order[i+1:]...)
			break
		}
	}
}

// Keys returns the keys in insertion order.
func (d *Dict) Keys() []Key {
	out := make([]Key, len(d.order))
	copy(out, d.order)
	return out
}

// SortedKeys returns the keys sorted by their printable form; used by
// deterministic reporting (e.g. word-count output).
func (d *Dict) SortedKeys() []Key {
	out := d.Keys()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		switch out[i].Kind {
		case 's':
			return out[i].S < out[j].S
		case 'i', 'b':
			return out[i].I < out[j].I
		default:
			return out[i].F < out[j].F
		}
	})
	return out
}

// DeepCopy implements Copier.
func (d *Dict) DeepCopy(m Memo) Value {
	if c, ok := m[d]; ok {
		return c
	}
	nd := &Dict{m: make(map[Key]Value, len(d.m)), order: make([]Key, len(d.order))}
	m[d] = nd
	copy(nd.order, d.order)
	for k, v := range d.m {
		nd.m[k] = DeepCopy(v, m)
	}
	return nd
}

// Range is the lazily-iterated result of range(...).
type Range struct {
	Start, Stop, Step int64
}

// TypeName implements Value.
func (*Range) TypeName() string { return "range" }

// Truthy implements Value.
func (*Range) Truthy() bool { return true }

func (r *Range) String() string {
	return fmt.Sprintf("range(%d, %d, %d)", r.Start, r.Stop, r.Step)
}

// Len returns the number of elements produced by the range.
func (r *Range) Len() int64 {
	if r.Step == 0 {
		return 0
	}
	if r.Step > 0 {
		if r.Stop <= r.Start {
			return 0
		}
		return (r.Stop - r.Start + r.Step - 1) / r.Step
	}
	if r.Start <= r.Stop {
		return 0
	}
	return (r.Start - r.Stop + (-r.Step) - 1) / (-r.Step)
}

// ---- environments and closures ----

// Env is a lexical environment frame. Function bodies and do-blocks get a
// fresh Env whose parent is the closure's defining Env; assignment updates
// the nearest existing binding or defines in the innermost frame (Ruby
// block semantics, which is what the paper's Listing 5 relies on: the
// do-block passed to fork sees the enclosing `queue`).
type Env struct {
	parent *Env
	vars   map[string]Value
}

// NewEnv returns a fresh environment with the given parent (nil for the
// process-global environment).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, vars: make(map[string]Value)}
}

// Parent returns the enclosing environment, or nil.
func (e *Env) Parent() *Env { return e.parent }

// Get resolves a name through the chain.
func (e *Env) Get(name string) (Value, bool) {
	for env := e; env != nil; env = env.parent {
		if v, ok := env.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Set assigns to the nearest binding of name, or defines it in the
// innermost frame if unbound anywhere.
func (e *Env) Set(name string, v Value) {
	for env := e; env != nil; env = env.parent {
		if _, ok := env.vars[name]; ok {
			env.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

// Define binds name in this frame, shadowing outer bindings.
func (e *Env) Define(name string, v Value) { e.vars[name] = v }

// Names returns the names bound directly in this frame, sorted. The
// debugger's variables view uses it.
func (e *Env) Names() []string {
	out := make([]string, 0, len(e.vars))
	for k := range e.vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SnapshotUpTo flattens the bindings of the chain below stop, exclusive
// (inner shadows outer). The core dumper uses it with stop = the global
// environment to capture a frame's locals without duplicating every
// global into every frame record. stop == nil behaves like Snapshot.
func (e *Env) SnapshotUpTo(stop *Env) map[string]Value {
	out := make(map[string]Value)
	var walk func(env *Env)
	walk = func(env *Env) {
		if env == nil || env == stop {
			return
		}
		walk(env.parent)
		for k, v := range env.vars {
			out[k] = v
		}
	}
	walk(e)
	return out
}

// Snapshot flattens the visible bindings (inner shadows outer) for the
// debugger's variables view.
func (e *Env) Snapshot() map[string]Value {
	out := make(map[string]Value)
	var walk func(env *Env)
	walk = func(env *Env) {
		if env == nil {
			return
		}
		walk(env.parent)
		for k, v := range env.vars {
			out[k] = v
		}
	}
	walk(e)
	return out
}

// RestoreEnv returns an empty, parentless environment shell for checkpoint
// restore, which must register an environment before decoding its contents:
// closure graphs may reference it from inside its own parent's bindings.
// Pair with RestoreBindParent once the parent exists.
func RestoreEnv() *Env { return &Env{vars: make(map[string]Value)} }

// RestoreBindParent attaches the parent of an environment built by
// RestoreEnv.
func (e *Env) RestoreBindParent(p *Env) { e.parent = p }

// DeepCopyEnv copies an environment chain with memoization.
func DeepCopyEnv(e *Env, m Memo) *Env {
	if e == nil {
		return nil
	}
	if c, ok := m[e]; ok {
		return c.(*envBox).env
	}
	ne := &Env{vars: make(map[string]Value, len(e.vars))}
	m[e] = &envBox{env: ne}
	ne.parent = DeepCopyEnv(e.parent, m)
	for k, v := range e.vars {
		ne.vars[k] = DeepCopy(v, m)
	}
	return ne
}

// envBox lets *Env participate in the Value-typed memo table.
type envBox struct{ env *Env }

func (*envBox) TypeName() string { return "env" }
func (*envBox) Truthy() bool     { return true }
func (*envBox) String() string   { return "<env>" }

// Closure is a user-defined function bound to its defining environment.
type Closure struct {
	Proto *bytecode.FuncProto
	Env   *Env
}

// TypeName implements Value.
func (*Closure) TypeName() string { return "function" }

// Truthy implements Value.
func (*Closure) Truthy() bool { return true }

func (c *Closure) String() string { return fmt.Sprintf("<function %s>", c.Proto.Name) }

// DeepCopy implements Copier. Code is immutable and shared; the captured
// environment is copied.
func (c *Closure) DeepCopy(m Memo) Value {
	if cp, ok := m[c]; ok {
		return cp
	}
	nc := &Closure{Proto: c.Proto}
	m[c] = nc
	nc.Env = DeepCopyEnv(c.Env, m)
	return nc
}

// Equal compares two values for pint ==. Containers compare element-wise;
// reference types without structural equality compare by identity.
func Equal(a, b Value) bool {
	switch x := a.(type) {
	case Nil:
		_, ok := b.(Nil)
		return ok
	case Bool:
		y, ok := b.(Bool)
		return ok && x == y
	case Int:
		switch y := b.(type) {
		case Int:
			return x == y
		case Float:
			return Float(x) == y
		}
		return false
	case Float:
		switch y := b.(type) {
		case Float:
			return x == y
		case Int:
			return x == Float(y)
		}
		return false
	case Str:
		y, ok := b.(Str)
		return ok && x == y
	case *List:
		y, ok := b.(*List)
		if !ok || len(x.Elems) != len(y.Elems) {
			return false
		}
		for i := range x.Elems {
			if !Equal(x.Elems[i], y.Elems[i]) {
				return false
			}
		}
		return true
	case *Dict:
		y, ok := b.(*Dict)
		if !ok || x.Len() != y.Len() {
			return false
		}
		for _, k := range x.order {
			yv, ok := y.Get(k)
			if !ok || !Equal(x.m[k], yv) {
				return false
			}
		}
		return true
	default:
		return a == b
	}
}
