package value_test

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dionea/internal/value"
)

func TestScalars(t *testing.T) {
	cases := []struct {
		v      value.Value
		name   string
		truthy bool
		str    string
	}{
		{value.NilV, "nil", false, "nil"},
		{value.Bool(true), "bool", true, "true"},
		{value.Bool(false), "bool", false, "false"},
		{value.Int(-3), "int", true, "-3"},
		{value.Float(2.5), "float", true, "2.5"},
		{value.Str(""), "string", true, ""},
	}
	for _, c := range cases {
		if c.v.TypeName() != c.name || c.v.Truthy() != c.truthy || c.v.String() != c.str {
			t.Fatalf("%#v: %s %v %s", c.v, c.v.TypeName(), c.v.Truthy(), c.v)
		}
	}
}

func TestDictInsertionOrderAndDelete(t *testing.T) {
	d := value.NewDict()
	for _, k := range []string{"c", "a", "b"} {
		key, _ := value.KeyOf(value.Str(k))
		d.Set(key, value.Str(k))
	}
	keys := d.Keys()
	if keys[0].S != "c" || keys[1].S != "a" || keys[2].S != "b" {
		t.Fatalf("order: %v", keys)
	}
	ka, _ := value.KeyOf(value.Str("a"))
	d.Delete(ka)
	if d.Len() != 2 {
		t.Fatalf("len after delete = %d", d.Len())
	}
	sorted := d.SortedKeys()
	if sorted[0].S != "b" || sorted[1].S != "c" {
		t.Fatalf("sorted: %v", sorted)
	}
}

func TestKeyOfRejectsUnhashable(t *testing.T) {
	if _, err := value.KeyOf(value.NewList()); err == nil {
		t.Fatalf("list should be unhashable")
	}
	if _, err := value.KeyOf(value.NilV); err == nil {
		t.Fatalf("nil should be unhashable")
	}
}

func TestEqualSemantics(t *testing.T) {
	if !value.Equal(value.Int(3), value.Float(3)) {
		t.Fatalf("3 != 3.0")
	}
	a := value.NewList(value.Int(1), value.NewList(value.Str("x")))
	b := value.NewList(value.Int(1), value.NewList(value.Str("x")))
	if !value.Equal(a, b) {
		t.Fatalf("structural list equality failed")
	}
	d1, d2 := value.NewDict(), value.NewDict()
	k, _ := value.KeyOf(value.Str("k"))
	d1.Set(k, value.Int(1))
	d2.Set(k, value.Int(1))
	if !value.Equal(d1, d2) {
		t.Fatalf("structural dict equality failed")
	}
	d2.Set(k, value.Int(2))
	if value.Equal(d1, d2) {
		t.Fatalf("unequal dicts compared equal")
	}
}

func TestDeepCopyIsolation(t *testing.T) {
	inner := value.NewList(value.Int(1))
	d := value.NewDict()
	k, _ := value.KeyOf(value.Str("l"))
	d.Set(k, inner)
	outer := value.NewList(inner, d)

	cp := value.DeepCopy(outer, value.Memo{}).(*value.List)
	// Mutate the copy; the original must not change.
	cp.Elems[0].(*value.List).Elems[0] = value.Int(99)
	if inner.Elems[0] != value.Int(1) {
		t.Fatalf("copy mutation leaked to original")
	}
	// Aliasing preserved inside the copy: cp[0] and cp[1]["l"] are the
	// same object.
	cpd := cp.Elems[1].(*value.Dict)
	v, _ := cpd.Get(k)
	if v != cp.Elems[0] {
		t.Fatalf("aliasing not preserved in copy")
	}
}

func TestDeepCopyHandlesCycles(t *testing.T) {
	l := value.NewList()
	l.Elems = append(l.Elems, l) // self-cycle
	cp := value.DeepCopy(l, value.Memo{}).(*value.List)
	if cp.Elems[0] != cp {
		t.Fatalf("cycle not reproduced")
	}
	if cp == l {
		t.Fatalf("copy is the original")
	}
}

func TestEnvChainSemantics(t *testing.T) {
	g := value.NewEnv(nil)
	g.Define("x", value.Int(1))
	inner := value.NewEnv(g)

	// Set updates the nearest binding.
	inner.Set("x", value.Int(2))
	if v, _ := g.Get("x"); v != value.Int(2) {
		t.Fatalf("Set did not update outer binding: %v", v)
	}
	// Unbound Set defines innermost.
	inner.Set("y", value.Int(3))
	if _, ok := g.Get("y"); ok {
		t.Fatalf("y leaked to outer scope")
	}
	// Define shadows.
	inner.Define("x", value.Int(10))
	if v, _ := inner.Get("x"); v != value.Int(10) {
		t.Fatalf("shadow failed")
	}
	if v, _ := g.Get("x"); v != value.Int(2) {
		t.Fatalf("outer clobbered by Define")
	}
	snap := inner.Snapshot()
	if snap["x"] != value.Int(10) || snap["y"] != value.Int(3) {
		t.Fatalf("snapshot: %v", snap)
	}
}

func TestDeepCopyEnvSharesViaMemo(t *testing.T) {
	g := value.NewEnv(nil)
	shared := value.NewList(value.Int(7))
	g.Define("s", shared)
	f1 := value.NewEnv(g)
	f1.Define("also", shared)

	memo := value.Memo{}
	cg := value.DeepCopyEnv(g, memo)
	cf1 := value.DeepCopyEnv(f1, memo)

	if cf1.Parent() != cg {
		t.Fatalf("copied chain broken")
	}
	s1, _ := cg.Get("s")
	s2, _ := cf1.Get("also")
	if s1 != s2 {
		t.Fatalf("shared value duplicated across envs")
	}
	if s1 == value.Value(shared) {
		t.Fatalf("copy shares with original")
	}
}

// randomValue builds a random acyclic value tree.
func randomValue(r *rand.Rand, depth int) value.Value {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return value.Int(r.Int63n(1000))
		case 1:
			return value.Str(string(rune('a' + r.Intn(26))))
		case 2:
			return value.Bool(r.Intn(2) == 0)
		default:
			return value.NilV
		}
	}
	switch r.Intn(3) {
	case 0:
		n := r.Intn(4)
		l := value.NewList()
		for i := 0; i < n; i++ {
			l.Elems = append(l.Elems, randomValue(r, depth-1))
		}
		return l
	case 1:
		d := value.NewDict()
		n := r.Intn(4)
		for i := 0; i < n; i++ {
			k, _ := value.KeyOf(value.Int(int64(i)))
			d.Set(k, randomValue(r, depth-1))
		}
		return d
	default:
		return randomValue(r, 0)
	}
}

// Property: DeepCopy(v) is Equal to v, but never the same mutable object.
func TestDeepCopyEqualProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 4)
		cp := value.DeepCopy(v, value.Memo{})
		if !value.Equal(v, cp) {
			return false
		}
		switch v.(type) {
		case *value.List, *value.Dict:
			if reflect.ValueOf(v).Pointer() == reflect.ValueOf(cp).Pointer() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Equal is reflexive on random values.
func TestEqualReflexiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		v := randomValue(r, 4)
		return value.Equal(v, v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeLen(t *testing.T) {
	cases := []struct {
		r value.Range
		n int64
	}{
		{value.Range{Start: 0, Stop: 10, Step: 1}, 10},
		{value.Range{Start: 0, Stop: 10, Step: 3}, 4},
		{value.Range{Start: 10, Stop: 0, Step: -2}, 5},
		{value.Range{Start: 5, Stop: 5, Step: 1}, 0},
		{value.Range{Start: 0, Stop: 10, Step: 0}, 0},
		{value.Range{Start: 10, Stop: 0, Step: 1}, 0},
	}
	for _, c := range cases {
		if got := c.r.Len(); got != c.n {
			t.Fatalf("%+v len = %d, want %d", c.r, got, c.n)
		}
	}
}

func TestReprQuotesStrings(t *testing.T) {
	l := value.NewList(value.Str("a b"), value.Int(1))
	if l.String() != `["a b", 1]` {
		t.Fatalf("repr: %s", l.String())
	}
}
