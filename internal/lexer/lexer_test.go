package lexer_test

import (
	"strings"
	"testing"
	"testing/quick"

	"dionea/internal/lexer"
	"dionea/internal/token"
)

func kinds(src string) []token.Type {
	var out []token.Type
	for _, t := range lexer.New(src).All() {
		out = append(out, t.Type)
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	toks := lexer.New(`x = 41 + 1.5`).All()
	want := []token.Type{token.IDENT, token.ASSIGN, token.INT, token.PLUS, token.FLOAT, token.EOF}
	if len(toks) != len(want) {
		t.Fatalf("got %v", toks)
	}
	for i, w := range want {
		if toks[i].Type != w {
			t.Fatalf("token %d = %v, want %v", i, toks[i], w)
		}
	}
	if toks[0].Literal != "x" || toks[2].Literal != "41" || toks[4].Literal != "1.5" {
		t.Fatalf("literals wrong: %v", toks)
	}
}

func TestKeywordsAndIdentifiers(t *testing.T) {
	toks := lexer.New("if elsex while fork do end").All()
	want := []token.Type{token.IF, token.IDENT, token.WHILE, token.IDENT, token.DO, token.END, token.EOF}
	for i, w := range want {
		if toks[i].Type != w {
			t.Fatalf("token %d = %v, want %v", i, toks[i], w)
		}
	}
}

func TestTwoCharOperators(t *testing.T) {
	toks := lexer.New("== != <= >= += -= = < >").All()
	want := []token.Type{token.EQ, token.NEQ, token.LE, token.GE, token.PLUSEQ,
		token.MINUSEQ, token.ASSIGN, token.LT, token.GT, token.EOF}
	for i, w := range want {
		if toks[i].Type != w {
			t.Fatalf("token %d = %v, want %v", i, toks[i], w)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	toks := lexer.New(`"a\nb\t\"q\"" 'single'`).All()
	if toks[0].Type != token.STRING || toks[0].Literal != "a\nb\t\"q\"" {
		t.Fatalf("escapes: %q", toks[0].Literal)
	}
	if toks[1].Type != token.STRING || toks[1].Literal != "single" {
		t.Fatalf("single quotes: %q", toks[1].Literal)
	}
}

func TestUnterminatedStringReportsError(t *testing.T) {
	lx := lexer.New("\"oops\nx = 1")
	lx.All()
	if len(lx.Errors()) == 0 {
		t.Fatalf("no error for unterminated string")
	}
}

func TestCommentsSkipped(t *testing.T) {
	got := kinds("x = 1 # comment with if while \"strings\"\ny = 2")
	want := []token.Type{token.IDENT, token.ASSIGN, token.INT, token.NEWLINE,
		token.IDENT, token.ASSIGN, token.INT, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNewlinesInsideBracketsSuppressed(t *testing.T) {
	got := kinds("f(1,\n2,\n3)\n[\n1,\n2\n]")
	for _, k := range got[:len(got)-1] {
		if k == token.NEWLINE {
			// One newline IS expected: the one after f(...) closing paren.
			// Count them: only 1 allowed.
		}
	}
	n := 0
	for _, k := range got {
		if k == token.NEWLINE {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("newlines = %d, want 1 (only after the call): %v", n, got)
	}
}

func TestLineAndColumnTracking(t *testing.T) {
	toks := lexer.New("a = 1\n  b = 2").All()
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Fatalf("a at %d:%d", toks[0].Line, toks[0].Col)
	}
	// b is on line 2 col 3.
	var b token.Token
	for _, tok := range toks {
		if tok.Literal == "b" {
			b = tok
		}
	}
	if b.Line != 2 || b.Col != 3 {
		t.Fatalf("b at %d:%d", b.Line, b.Col)
	}
}

func TestIllegalCharacter(t *testing.T) {
	lx := lexer.New("x = 1 @ 2")
	toks := lx.All()
	found := false
	for _, tok := range toks {
		if tok.Type == token.ILLEGAL {
			found = true
		}
	}
	if !found || len(lx.Errors()) == 0 {
		t.Fatalf("@ not reported: %v", toks)
	}
}

// Property: the lexer terminates and ends with EOF on arbitrary input.
func TestLexerTotalOnArbitraryInput(t *testing.T) {
	f := func(src string) bool {
		toks := lexer.New(src).All()
		return len(toks) > 0 && toks[len(toks)-1].Type == token.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: integer literals round-trip.
func TestIntLiteralRoundTrip(t *testing.T) {
	f := func(n uint32) bool {
		toks := lexer.New(strings.TrimSpace(" " + itoa(int64(n)))).All()
		return toks[0].Type == token.INT && toks[0].Literal == itoa(int64(n))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
