// Package lexer converts pint source text into a token stream.
//
// The language is newline-delimited (like Python and Ruby) but uses
// explicit braces for blocks plus Ruby-style `do ... end` blocks; there is
// no significant indentation, which keeps the scanner simple while the
// line numbers remain exact — line numbers are load-bearing for the
// debugger's breakpoints and deadlock reports.
package lexer

import (
	"fmt"
	"strings"

	"dionea/internal/token"
)

// Lexer scans a single source file.
type Lexer struct {
	src  string
	pos  int // current offset
	line int
	col  int
	errs []error
	// parenDepth tracks open (, [ and { so newlines inside them can be
	// ignored, as Python does for implicit line joining.
	parenDepth int
	lastEmit   token.Type
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns scan errors accumulated so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(line, col int, format string, args ...interface{}) {
	l.errs = append(l.errs, fmt.Errorf("lex %d:%d: %s", line, col, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

func (l *Lexer) advance() byte {
	ch := l.src[l.pos]
	l.pos++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func isLetter(ch byte) bool {
	return 'a' <= ch && ch <= 'z' || 'A' <= ch && ch <= 'Z' || ch == '_'
}

func isDigit(ch byte) bool { return '0' <= ch && ch <= '9' }

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	for {
		tok, ok := l.scan()
		if !ok {
			continue // skipped (comment, blank inside parens, ...)
		}
		l.lastEmit = tok.Type
		return tok
	}
}

// scan produces at most one token; ok=false means "nothing emitted, call
// again" (whitespace, comments, suppressed newlines).
func (l *Lexer) scan() (token.Token, bool) {
	// Skip spaces and tabs (never newlines; those are tokens).
	for l.pos < len(l.src) && (l.peek() == ' ' || l.peek() == '\t' || l.peek() == '\r') {
		l.advance()
	}
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token.Token{Type: token.EOF, Line: line, Col: col}, true
	}
	ch := l.peek()

	// Comments run to end of line.
	if ch == '#' {
		for l.pos < len(l.src) && l.peek() != '\n' {
			l.advance()
		}
		return token.Token{}, false
	}

	if ch == '\n' {
		l.advance()
		// Inside brackets, or when nothing has been emitted yet on this
		// logical line, newlines are insignificant.
		if l.parenDepth > 0 || l.lastEmit == token.NEWLINE || l.lastEmit == token.Type(0) ||
			l.lastEmit == token.LBRACE || l.lastEmit == token.DO {
			return token.Token{}, false
		}
		return token.Token{Type: token.NEWLINE, Line: line, Col: col}, true
	}

	if isLetter(ch) {
		start := l.pos
		for l.pos < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.pos]
		return token.Token{Type: token.Lookup(lit), Literal: lit, Line: line, Col: col}, true
	}

	if isDigit(ch) {
		start := l.pos
		typ := token.INT
		for l.pos < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if l.peek() == '.' && isDigit(l.peekAt(1)) {
			typ = token.FLOAT
			l.advance()
			for l.pos < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		}
		return token.Token{Type: typ, Literal: l.src[start:l.pos], Line: line, Col: col}, true
	}

	if ch == '"' || ch == '\'' {
		return l.scanString(ch), true
	}

	l.advance()
	two := func(next byte, yes, no token.Type) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Type: yes, Line: line, Col: col}
		}
		return token.Token{Type: no, Line: line, Col: col}
	}
	switch ch {
	case '=':
		return two('=', token.EQ, token.ASSIGN), true
	case '+':
		return two('=', token.PLUSEQ, token.PLUS), true
	case '-':
		return two('=', token.MINUSEQ, token.MINUS), true
	case '*':
		return token.Token{Type: token.STAR, Line: line, Col: col}, true
	case '/':
		return token.Token{Type: token.SLASH, Line: line, Col: col}, true
	case '%':
		return token.Token{Type: token.PERCENT, Line: line, Col: col}, true
	case '!':
		return two('=', token.NEQ, token.BANG), true
	case '<':
		return two('=', token.LE, token.LT), true
	case '>':
		return two('=', token.GE, token.GT), true
	case '(':
		l.parenDepth++
		return token.Token{Type: token.LPAREN, Line: line, Col: col}, true
	case ')':
		l.parenDepth--
		return token.Token{Type: token.RPAREN, Line: line, Col: col}, true
	case '[':
		l.parenDepth++
		return token.Token{Type: token.LBRACKET, Line: line, Col: col}, true
	case ']':
		l.parenDepth--
		return token.Token{Type: token.RBRACKET, Line: line, Col: col}, true
	case '{':
		return token.Token{Type: token.LBRACE, Line: line, Col: col}, true
	case '}':
		return token.Token{Type: token.RBRACE, Line: line, Col: col}, true
	case ',':
		return token.Token{Type: token.COMMA, Line: line, Col: col}, true
	case ':':
		return token.Token{Type: token.COLON, Line: line, Col: col}, true
	case '.':
		return token.Token{Type: token.DOT, Line: line, Col: col}, true
	case '|':
		return token.Token{Type: token.PIPE, Line: line, Col: col}, true
	}
	l.errorf(line, col, "unexpected character %q", ch)
	return token.Token{Type: token.ILLEGAL, Literal: string(ch), Line: line, Col: col}, true
}

func (l *Lexer) scanString(quote byte) token.Token {
	line, col := l.line, l.col
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) || l.peek() == '\n' {
			l.errorf(line, col, "unterminated string")
			return token.Token{Type: token.ILLEGAL, Literal: b.String(), Line: line, Col: col}
		}
		ch := l.advance()
		if ch == quote {
			break
		}
		if ch == '\\' {
			if l.pos >= len(l.src) {
				l.errorf(line, col, "unterminated escape")
				break
			}
			esc := l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			default:
				l.errorf(l.line, l.col, "unknown escape \\%c", esc)
			}
			continue
		}
		b.WriteByte(ch)
	}
	return token.Token{Type: token.STRING, Literal: b.String(), Line: line, Col: col}
}

// All scans the entire input and returns every token up to and including
// the first EOF. Useful for tests and tooling.
func (l *Lexer) All() []token.Token {
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Type == token.EOF {
			return out
		}
	}
}
