// Fan-out throughput: how many events per second one broker can push
// through to N attached observers. This is the fabric's cost model —
// every observer multiplies the broker's write load, and the shedding
// policy (bounded per-client queues, events_dropped markers) is what
// keeps a slow observer from stalling the rest. The measurement runs a
// real broker with a synthetic backend (no interpreter: the debuggee is
// a message generator), so it isolates the fabric from the kernel.

package bench

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dionea/internal/broker"
	"dionea/internal/protocol"
)

// FanoutResult is one fan-out measurement — the schema of the committed
// BENCH_fanout.json artifact, which scripts/verify.sh guards against
// regression (fail when throughput halves).
type FanoutResult struct {
	Workload     string  `json:"workload"` // always "fanout"
	Observers    int     `json:"observers"`
	Events       int     `json:"events"` // events offered per rep
	EventsPerSec float64 `json:"events_per_sec"`
	Drops        uint64  `json:"drops"` // shed events in the best rep
	Reps         int     `json:"reps"`
}

// FanoutWorkload is the Workload tag distinguishing fan-out artifacts
// from the trace-overhead ones in checkAgainst-style gates.
const FanoutWorkload = "fanout"

// fanoutAttachment is one raw broker client: the command channel that
// claims the role plus the source channel events arrive on.
type fanoutAttachment struct {
	cmd, src *protocol.Conn
}

func fanoutAttach(addr, session, role, name string) (*fanoutAttachment, error) {
	att := &fanoutAttachment{}
	for _, ch := range []string{protocol.ChannelCommand, protocol.ChannelSource} {
		nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			att.close()
			return nil, err
		}
		conn := protocol.NewConn(nc)
		conn.SetWriteTimeout(5 * time.Second)
		if err := conn.Send(&protocol.Msg{
			Kind: "req", Cmd: protocol.CmdAttach,
			Channel: ch, Session: session, Role: role, Text: name,
		}); err != nil {
			_ = conn.Close()
			att.close()
			return nil, err
		}
		conn.SetReadTimeout(10 * time.Second)
		resp, err := conn.Recv()
		conn.SetReadTimeout(0)
		if err != nil {
			_ = conn.Close()
			att.close()
			return nil, err
		}
		if resp.Err != "" {
			_ = conn.Close()
			att.close()
			return nil, fmt.Errorf("bench: attach %s rejected: %s", ch, resp.Err)
		}
		if ch == protocol.ChannelCommand {
			att.cmd = conn
		} else {
			att.src = conn
		}
	}
	return att, nil
}

func (a *fanoutAttachment) close() {
	if a.cmd != nil {
		_ = a.cmd.Close()
	}
	if a.src != nil {
		_ = a.src.Close()
	}
}

// fanoutBackend registers a synthetic backend with the broker: it hosts
// any session instantly (root pid 1) and acknowledges every forwarded
// request, so the fabric's own data path is the only thing measured.
// The returned conn is the flood source; the returned stop func tears
// the backend down.
func fanoutBackend(addr string) (*protocol.Conn, func(), error) {
	nc, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, nil, err
	}
	conn := protocol.NewConn(nc)
	conn.SetWriteTimeout(10 * time.Second)
	if err := conn.Send(&protocol.Msg{
		Kind: "req", Cmd: protocol.CmdRegisterBackend,
		Text: "bench-be", On: true,
	}); err != nil {
		_ = conn.Close()
		return nil, nil, err
	}
	conn.SetReadTimeout(10 * time.Second)
	resp, err := conn.Recv()
	conn.SetReadTimeout(0)
	if err != nil {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("bench: backend register failed: %v", err)
	}
	if resp.Err != "" {
		_ = conn.Close()
		return nil, nil, fmt.Errorf("bench: backend register rejected: %s", resp.Err)
	}
	// Answer pings, host requests and forwarded commands; everything is
	// OK by construction. Send is frame-atomic, so the responder and the
	// flood may share the conn.
	go func() {
		for {
			m, err := conn.Recv()
			if err != nil {
				return
			}
			if m.Kind != "req" {
				continue
			}
			r := &protocol.Msg{Kind: "resp", ID: m.ID, Cmd: m.Cmd, Session: m.Session, OK: true}
			if m.Cmd == protocol.CmdHostSession {
				r.PID = 1
			}
			_ = conn.Send(r)
		}
	}()
	return conn, func() { _ = conn.Close() }, nil
}

// MeasureFanout floods events events through a real broker to observers
// attached source channels, reps times, and reports the best rep's
// delivered throughput. A final process_exited sentinel per rep — a
// critical event the broker may never shed — bounds each rep exactly.
func MeasureFanout(observers, events, reps int) (FanoutResult, error) {
	if observers <= 0 {
		observers = 8
	}
	if events <= 0 {
		events = 5000
	}
	if reps <= 0 {
		reps = 3
	}
	bk, err := broker.Start("127.0.0.1:0", broker.Options{QueueLen: 256})
	if err != nil {
		return FanoutResult{}, err
	}
	defer bk.Close()
	flood, stopBE, err := fanoutBackend(bk.Addr())
	if err != nil {
		return FanoutResult{}, err
	}
	defer stopBE()

	const session = "bench-fanout"
	ctrl, err := fanoutAttach(bk.Addr(), session, protocol.RoleController, "bench-ctrl")
	if err != nil {
		return FanoutResult{}, err
	}
	defer ctrl.close()
	atts := make([]*fanoutAttachment, observers)
	for i := range atts {
		att, err := fanoutAttach(bk.Addr(), session, protocol.RoleObserver, fmt.Sprintf("bench-obs-%d", i))
		if err != nil {
			return FanoutResult{}, err
		}
		defer att.close()
		atts[i] = att
	}

	best := FanoutResult{Workload: FanoutWorkload, Observers: observers, Events: events, Reps: reps}
	for rep := 1; rep <= reps; rep++ {
		var delivered, drops atomic.Uint64
		var wg sync.WaitGroup
		var firstErr atomic.Value
		sentinel := int64(rep)
		for _, att := range atts {
			wg.Add(1)
			go func(src *protocol.Conn) {
				defer wg.Done()
				src.SetReadTimeout(30 * time.Second)
				defer src.SetReadTimeout(0)
				for {
					m, err := src.Recv()
					if err != nil {
						firstErr.Store(err)
						return
					}
					switch m.Cmd {
					case protocol.EventOutput:
						delivered.Add(1)
					case protocol.EventEventsDropped:
						n := m.Dropped
						if n == 0 {
							n = m.Seq
						}
						drops.Add(n)
					case protocol.EventProcessExited:
						if m.PID == sentinel {
							return
						}
					}
				}
			}(att.src)
		}
		start := time.Now()
		for i := 0; i < events; i++ {
			if err := flood.Send(&protocol.Msg{
				Kind: "event", Cmd: protocol.EventOutput,
				Session: session, PID: 1, Text: "bench\n",
			}); err != nil {
				return FanoutResult{}, fmt.Errorf("bench: flood: %w", err)
			}
		}
		if err := flood.Send(&protocol.Msg{
			Kind: "event", Cmd: protocol.EventProcessExited,
			Session: session, PID: sentinel,
		}); err != nil {
			return FanoutResult{}, fmt.Errorf("bench: sentinel: %w", err)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err, ok := firstErr.Load().(error); ok && err != nil {
			return FanoutResult{}, fmt.Errorf("bench: observer: %w", err)
		}
		eps := float64(delivered.Load()) / elapsed.Seconds()
		if eps > best.EventsPerSec {
			best.EventsPerSec = eps
			best.Drops = drops.Load()
		}
	}
	return best, nil
}

// FormatFanoutResult renders the fan-out text row.
func FormatFanoutResult(r FanoutResult) string {
	return fmt.Sprintf(
		"broker fan-out — one broker, %d observers, %d events/rep\n"+
			"  delivered %10.0f events/sec   (%d shed in best rep)   [best of %d]\n",
		r.Observers, r.Events, r.EventsPerSec, r.Drops, r.Reps)
}
