// Package bench contains the shared measurement code behind the paper's
// evaluation (§7): the word-frequency MapReduce runs of Figure 9 (Dionea
// source), Figure 10 (Linux source), the Rust-source run described in the
// text, and the Table 1 environment report. Both the root bench_test.go
// and cmd/benchfig drive it.
package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"dionea/internal/corpus"
	"dionea/internal/wordcount"
)

// Experiment describes one §7 measurement.
type Experiment struct {
	ID     string // "Figure 9", "Rust run", "Figure 10"
	Preset corpus.Preset
	// PaperNormal/PaperDebug are the wall times the paper reports.
	PaperNormal time.Duration
	PaperDebug  time.Duration
	// PaperLabel names the original corpus.
	PaperLabel string
}

// Experiments lists the paper's three overhead measurements.
func Experiments() []Experiment {
	return []Experiment{
		{
			ID: "Figure 9", Preset: corpus.Dionea,
			PaperNormal: 2310 * time.Millisecond,
			PaperDebug:  2580 * time.Millisecond,
			PaperLabel:  "Dionea source code (trunk r656)",
		},
		{
			ID: "Rust run (§7)", Preset: corpus.Rust,
			PaperNormal: 3*time.Minute + 49*time.Second,
			PaperDebug:  4*time.Minute + 36*time.Second,
			PaperLabel:  "Rust source code (master 7613b15)",
		},
		{
			ID: "Figure 10", Preset: corpus.Linux,
			PaperNormal: 1601 * time.Second,
			PaperDebug:  1933 * time.Second,
			PaperLabel:  "Linux 3.18.1",
		},
	}
}

// Result is one measured experiment.
type Result struct {
	Experiment Experiment
	Normal     time.Duration
	Debug      time.Duration
	Reps       int
	Workers    int
	Scale      int
	// Raw samples, for spread reporting.
	NormalRuns []float64
	DebugRuns  []float64
}

// OverheadPct returns the measured debugging overhead in percent.
func (r Result) OverheadPct() float64 {
	if r.Normal <= 0 {
		return 0
	}
	return (r.Debug.Seconds()/r.Normal.Seconds() - 1) * 100
}

// PaperOverheadPct returns the paper's overhead in percent.
func (r Result) PaperOverheadPct() float64 {
	e := r.Experiment
	if e.PaperNormal <= 0 {
		return 0
	}
	return (e.PaperDebug.Seconds()/e.PaperNormal.Seconds() - 1) * 100
}

// Measure runs one experiment: reps repetitions of the workload in each
// configuration, reporting the MINIMUM of each — the standard estimator
// for true cost on a noisy shared host, where every disturbance only adds
// time. Runs are interleaved so slow host phases hit both configurations.
func Measure(e Experiment, scale, workers, reps int) (Result, error) {
	if reps <= 0 {
		reps = 5
	}
	if workers <= 0 {
		workers = 4
	}
	lines := corpus.Generate(e.Preset, scale)
	var normals, debugs []float64
	for i := 0; i < reps; i++ {
		rn, err := wordcount.Run(lines, workers, false)
		if err != nil {
			return Result{}, fmt.Errorf("%s normal: %w", e.ID, err)
		}
		rd, err := wordcount.Run(lines, workers, true)
		if err != nil {
			return Result{}, fmt.Errorf("%s debug: %w", e.ID, err)
		}
		normals = append(normals, rn.Elapsed.Seconds())
		debugs = append(debugs, rd.Elapsed.Seconds())
	}
	return Result{
		Experiment: e,
		Normal:     time.Duration(minOf(normals) * float64(time.Second)),
		Debug:      time.Duration(minOf(debugs) * float64(time.Second)),
		Reps:       reps,
		Workers:    workers,
		Scale:      scale,
		NormalRuns: normals,
		DebugRuns:  debugs,
	}, nil
}

// TraceResult is one traced-overhead measurement — the cost of recording
// a concurrency event trace (pint -trace) relative to the bare run. It is
// the schema of the committed BENCH_fig9.json / BENCH_fig10.json
// artifacts, which scripts/verify.sh guards against regression.
type TraceResult struct {
	Workload    string  `json:"workload"`
	BaselineNS  int64   `json:"baseline_ns"`
	TracedNS    int64   `json:"traced_ns"`
	OverheadPct float64 `json:"overhead_pct"`
	Events      int     `json:"events"`
	Reps        int     `json:"reps"`
	Workers     int     `json:"workers"`
	Scale       int     `json:"scale"`
}

// JSONName returns the artifact file name for an experiment ID, or ""
// for experiments without a committed artifact.
func JSONName(id string) string {
	switch id {
	case "Figure 9":
		return "BENCH_fig9.json"
	case "Figure 10":
		return "BENCH_fig10.json"
	}
	return ""
}

// ExperimentByID finds an experiment by its ID or by its artifact name.
func ExperimentByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id || JSONName(e.ID) == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// MeasureTrace measures tracing overhead: reps interleaved repetitions of
// the workload bare and with a recorder attached, min of each (same
// estimator as Measure).
func MeasureTrace(e Experiment, scale, workers, reps int) (TraceResult, error) {
	if reps <= 0 {
		reps = 5
	}
	if workers <= 0 {
		workers = 4
	}
	lines := corpus.Generate(e.Preset, scale)
	var bases, traceds []float64
	events := 0
	for i := 0; i < reps; i++ {
		rb, err := wordcount.Run(lines, workers, false)
		if err != nil {
			return TraceResult{}, fmt.Errorf("%s baseline: %w", e.ID, err)
		}
		rt, n, err := wordcount.RunTraced(lines, workers)
		if err != nil {
			return TraceResult{}, fmt.Errorf("%s traced: %w", e.ID, err)
		}
		bases = append(bases, rb.Elapsed.Seconds())
		traceds = append(traceds, rt.Elapsed.Seconds())
		events = n
	}
	base := minOf(bases)
	traced := minOf(traceds)
	res := TraceResult{
		Workload:   e.ID,
		BaselineNS: int64(base * 1e9),
		TracedNS:   int64(traced * 1e9),
		Events:     events,
		Reps:       reps,
		Workers:    workers,
		Scale:      maxInt(scale, 1),
	}
	if base > 0 {
		res.OverheadPct = (traced/base - 1) * 100
	}
	return res, nil
}

// FormatTraceResult renders the traced-overhead text table row.
func FormatTraceResult(r TraceResult) string {
	return fmt.Sprintf(
		"%s — event tracing overhead\n"+
			"  baseline %8s   traced %8s   (%+.1f%%, %d events)   [min of %d, %d workers, corpus scale %dx]\n",
		r.Workload,
		fmtDur(time.Duration(r.BaselineNS)), fmtDur(time.Duration(r.TracedNS)),
		r.OverheadPct, r.Events, r.Reps, r.Workers, r.Scale)
}

func minOf(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 0 {
		return 0
	}
	return s[0]
}

// Table1Row is one row of the environment table (the paper's Table 1
// lists the machine the measurements ran on).
type Table1Row struct{ Key, Value string }

// Table1 reports this host next to the paper's box.
func Table1() []Table1Row {
	return []Table1Row{
		{"CPU (paper)", "Intel(R) Core(TM) i5 CPU, 4 cores"},
		{"CPU (here)", fmt.Sprintf("%s/%s, %d logical CPUs (GOMAXPROCS %d)",
			runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), runtime.GOMAXPROCS(0))},
		{"Platform (paper)", "Ubuntu 13.04 (3.8.0-27 SMP x86 64), Python 2.5.2, SSD, 6GB DDR3"},
		{"Platform (here)", fmt.Sprintf("Go %s, simulated interpreter (pint), simulated kernel", runtime.Version())},
	}
}

// FormatResult renders a paper-vs-measured comparison block.
func FormatResult(r Result) string {
	e := r.Experiment
	return fmt.Sprintf(
		"%s — word frequency over %s\n"+
			"  paper:    Normal %8s   Debugging %8s   (+%.1f%%)\n"+
			"  measured: Normal %8s   Debugging %8s   (+%.1f%%)   [min of %d, %d workers, corpus scale %dx]\n",
		e.ID, e.PaperLabel,
		fmtDur(e.PaperNormal), fmtDur(e.PaperDebug), r.PaperOverheadPct(),
		fmtDur(r.Normal), fmtDur(r.Debug), r.OverheadPct(),
		r.Reps, r.Workers, maxInt(r.Scale, 1))
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%dm%02ds", int(d.Minutes()), int(d.Seconds())%60)
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}
