package bench_test

import (
	"strings"
	"testing"
	"time"

	"dionea/internal/bench"
	"dionea/internal/corpus"
)

func TestExperimentsCoverTheEvaluation(t *testing.T) {
	exps := bench.Experiments()
	if len(exps) != 3 {
		t.Fatalf("experiments = %d", len(exps))
	}
	wantIDs := map[string]corpus.Preset{
		"Figure 9":      corpus.Dionea,
		"Rust run (§7)": corpus.Rust,
		"Figure 10":     corpus.Linux,
	}
	for _, e := range exps {
		if wantIDs[e.ID] != e.Preset {
			t.Fatalf("experiment %q has preset %q", e.ID, e.Preset)
		}
		if e.PaperDebug <= e.PaperNormal {
			t.Fatalf("%s: paper debug %v <= normal %v", e.ID, e.PaperDebug, e.PaperNormal)
		}
	}
}

func TestPaperOverheadsMatchPaper(t *testing.T) {
	// Sanity-check the transcription of the paper's numbers.
	for _, c := range []struct {
		id   string
		want float64
	}{
		{"Figure 9", 11.7},
		{"Rust run (§7)", 20.5},
		{"Figure 10", 20.7},
	} {
		for _, e := range bench.Experiments() {
			if e.ID != c.id {
				continue
			}
			r := bench.Result{Experiment: e}
			got := r.PaperOverheadPct()
			if got < c.want-0.5 || got > c.want+0.5 {
				t.Fatalf("%s: paper overhead = %.1f%%, expected ~%.1f%%", c.id, got, c.want)
			}
		}
	}
}

func TestMeasureSmoke(t *testing.T) {
	// One tiny repetition of the smallest experiment: Measure must produce
	// positive times and a sane report.
	e := bench.Experiments()[0]
	r, err := bench.Measure(e, 1, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Normal <= 0 || r.Debug <= 0 {
		t.Fatalf("times: %v %v", r.Normal, r.Debug)
	}
	if len(r.NormalRuns) != 1 || len(r.DebugRuns) != 1 {
		t.Fatalf("samples: %v %v", r.NormalRuns, r.DebugRuns)
	}
	out := bench.FormatResult(r)
	for _, want := range []string{"Figure 9", "paper:", "measured:", "Dionea source"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestTable1HasBothMachines(t *testing.T) {
	rows := bench.Table1()
	if len(rows) < 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	joined := ""
	for _, r := range rows {
		joined += r.Key + " " + r.Value + "\n"
	}
	for _, want := range []string{"Core(TM) i5", "GOMAXPROCS", "Python 2.5.2", "Go go"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("Table 1 missing %q:\n%s", want, joined)
		}
	}
}

func TestOverheadPctArithmetic(t *testing.T) {
	r := bench.Result{Normal: time.Second, Debug: 1200 * time.Millisecond}
	if pct := r.OverheadPct(); pct < 19.9 || pct > 20.1 {
		t.Fatalf("pct = %f", pct)
	}
	zero := bench.Result{}
	if zero.OverheadPct() != 0 {
		t.Fatalf("zero-division not guarded")
	}
}
