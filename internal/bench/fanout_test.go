package bench_test

import (
	"strings"
	"testing"

	"dionea/internal/bench"
)

func TestMeasureFanoutSmoke(t *testing.T) {
	// A tiny flood through a real broker: the measurement must deliver
	// every offered event (critical sentinel bounds each rep) and report
	// positive throughput.
	r, err := bench.MeasureFanout(3, 200, 1)
	if err != nil {
		t.Fatalf("MeasureFanout: %v", err)
	}
	if r.Workload != bench.FanoutWorkload {
		t.Fatalf("workload = %q", r.Workload)
	}
	if r.EventsPerSec <= 0 {
		t.Fatalf("events/sec = %v", r.EventsPerSec)
	}
	if r.Observers != 3 || r.Events != 200 || r.Reps != 1 {
		t.Fatalf("params echoed wrong: %+v", r)
	}
	out := bench.FormatFanoutResult(r)
	if !strings.Contains(out, "fan-out") || !strings.Contains(out, "3 observers") {
		t.Fatalf("report: %q", out)
	}
}
