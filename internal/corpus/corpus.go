// Package corpus generates deterministic, synthetic source-code corpora
// for the §7 overhead experiments. The paper counted word frequencies over
// three real code bases — Dionea's own source (trunk r656, Figure 9), the
// Rust compiler source (master 7613b15, §7) and Linux 3.18.1 (Figure 10).
// Those trees are not shippable here, so we synthesize text with the same
// relevant statistics: source-code-like lines mixing identifiers, reserved
// words, punctuation-laden tokens and comments, at three scales whose
// ratios track the original trees. What §7 measures is *relative* tracing
// overhead, which depends on the interpreter work per line, not on which
// identifiers appear.
package corpus

import "strings"

// Preset identifies one of the paper's three corpora.
type Preset string

// Presets. Word counts are scaled so the full suite runs on a laptop; the
// ratios between them mirror small codebase : compiler : kernel.
const (
	// Dionea is the Figure 9 corpus (Dionea source, trunk r656).
	Dionea Preset = "dionea"
	// Rust is the §7 mid-size corpus (Rust source, master 7613b15).
	Rust Preset = "rust"
	// Linux is the Figure 10 corpus (Linux 3.18.1).
	Linux Preset = "linux"
)

// Words returns the approximate word budget of a preset. scale multiplies
// the default (1 for tests/benches, larger for paper-scale runs).
func Words(p Preset, scale int) int {
	if scale <= 0 {
		scale = 1
	}
	base := map[Preset]int{
		Dionea: 40_000,
		Rust:   120_000,
		Linux:  400_000,
	}[p]
	if base == 0 {
		base = 40_000
	}
	return base * scale
}

// identRoots and identSuffixes combine into plausible identifiers.
var identRoots = []string{
	"buffer", "thread", "process", "queue", "socket", "server", "client",
	"session", "handler", "trace", "debug", "fork", "pipe", "mutex",
	"signal", "event", "frame", "stack", "parse", "token", "value",
	"index", "count", "total", "line", "file", "port", "data", "state",
	"lock", "wait", "send", "recv", "read", "write", "init", "free",
}

var identSuffixes = []string{
	"", "s", "er", "ed", "ing", "id", "ptr", "len", "cap", "ref",
}

// reservedish are words that look like keywords of common languages; a
// fraction of them collide with pint's reserved words on purpose, since
// the workload must *filter* reserved words (§7: "words that contain only
// letters and are not reserved words").
var reservedish = []string{
	"if", "else", "while", "for", "return", "break", "continue", "func",
	"end", "do", "not", "and", "or", "true", "false", "nil", "in",
	"def", "class", "import", "static", "void", "const", "struct",
}

var punctTokens = []string{
	"()", "{}", "x)", "42", "0x1f", "==", "+=", "->", "i++", "a[i]",
	"*p", "&x", "#include", "//", "/*", "*/", ";;", "::", "...",
}

// rng is a small deterministic linear congruential generator, so corpora
// are identical across runs and platforms.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 17
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate produces the preset corpus as lines of text.
func Generate(p Preset, scale int) []string {
	return GenerateWords(Words(p, scale), seedFor(p))
}

func seedFor(p Preset) uint64 {
	var s uint64 = 0x9e3779b97f4a7c15
	for _, c := range string(p) {
		s = s*31 + uint64(c)
	}
	return s
}

// GenerateWords produces roughly nWords of source-like text, 8–14 words
// per line.
func GenerateWords(nWords int, seed uint64) []string {
	r := &rng{s: seed}
	var lines []string
	var b strings.Builder
	words := 0
	for words < nWords {
		b.Reset()
		perLine := 8 + r.intn(7)
		for i := 0; i < perLine; i++ {
			if i > 0 {
				b.WriteByte(' ')
			}
			switch r.intn(10) {
			case 0, 1: // keyword-like
				b.WriteString(reservedish[r.intn(len(reservedish))])
			case 2, 3: // punctuation-laden token (filtered by isalpha)
				b.WriteString(punctTokens[r.intn(len(punctTokens))])
			default: // identifier
				b.WriteString(identRoots[r.intn(len(identRoots))])
				b.WriteString(identSuffixes[r.intn(len(identSuffixes))])
			}
		}
		words += perLine
		lines = append(lines, b.String())
	}
	return lines
}

// CountWords is a helper for sizing assertions in tests.
func CountWords(lines []string) int {
	n := 0
	for _, l := range lines {
		n += len(strings.Fields(l))
	}
	return n
}
