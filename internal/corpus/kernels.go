// Concurrency-bug kernels: minimal pint programs, each distilling one
// of the fork-related bug classes to its smallest reproducer, with the
// exact verdicts every tool must earn on it. They are the regression
// corpus for the whole toolchain — pintvet (static), pinttrace (one
// recorded run), and pintcheck (every run) are held to the same kernels
// in kernels_test.go, which this file deliberately does not import.
//
// Kernels are sized for exhaustive exploration: loops are bounded, and
// no kernel ever has two threads waiting on the same kernel object at
// once (multi-waiter wakeups consume inside the wait and are the one
// scheduling-invisible nondeterminism the checker cannot drive; see
// DESIGN §9).

package corpus

// BugKernel is one distilled concurrency bug and its expected verdicts.
type BugKernel struct {
	// Name is a stable identifier for the kernel.
	Name string
	// File is the name diagnostics are anchored to.
	File string
	// Source is the pint program.
	Source string
	// Want holds the exact pintvet diagnostics (Diagnostic.String()
	// form, sorted) the static analyzer must report for Source.
	Want []string
	// CheckConvictions holds the exact sorted set of conviction keys
	// (check.Conviction.Key() form, "rule@file:line") pintcheck must
	// produce when it exhausts the kernel's schedules. Empty means the
	// kernel must come back clean on every interleaving (the ok-variants
	// and benign-race controls guard against false positives).
	CheckConvictions []string
	// CheckWedges is true when at least one explored schedule must end
	// globally wedged (every live thread blocked). Wedge witnesses hang
	// `pint -replay`, so these kernels round-trip in-process only and are
	// excluded from the committed replay fixtures.
	CheckWedges bool
	// UsesMP marks kernels whose Source calls the mp prelude
	// (mp_process, mp_pool, ...); consumers must load mp.MustPrelude()
	// ahead of the program. The corpus package itself stays import-free.
	UsesMP bool
}

// Kernels returns the bug-kernel corpus in a fixed order.
func Kernels() []BugKernel {
	return []BugKernel{
		{
			Name: "cross-call-fork-while-lock-held",
			File: "k_forklock.pint",
			Source: `func deep_fork() {
    pid = fork do
        puts("orphaned lock in child")
    end
    waitpid(pid)
}

func middle() {
    deep_fork()
}

m = mutex_new()
m.lock()
middle()
m.unlock()
`,
			Want: []string{
				`k_forklock.pint:14: [fork-while-lock-held] call to middle() may fork while lock "m" may be held: the child inherits a lock whose owner thread does not exist in it (§5.3) [call chain: deep_fork@k_forklock.pint:9 -> fork@k_forklock.pint:2]`,
			},
			// Dynamically clean: the kernel's fork handlers implement the
			// §5.3 mitigation the rule demands (prepare locks the mutex,
			// the child reinitializes it), so no schedule wedges.
			CheckConvictions: nil,
		},
		{
			Name: "lock-order-cycle",
			File: "k_lockorder.pint",
			Source: `a = mutex_new()
b = mutex_new()

t1 = spawn do
    a.lock()
    b.lock()
    b.unlock()
    a.unlock()
end
t2 = spawn do
    b.lock()
    a.lock()
    a.unlock()
    b.unlock()
end
t1.join()
t2.join()
`,
			Want: []string{
				`k_lockorder.pint:6: [lock-order-cycle] locks "a", "b" are acquired in inconsistent order ("a" -> "b" at k_lockorder.pint:6, "b" -> "a" at k_lockorder.pint:12): threads interleaving these paths deadlock — impose a single acquisition order`,
			},
			CheckConvictions: []string{
				"deadlock@k_lockorder.pint:12",
				"deadlock@k_lockorder.pint:16",
				"deadlock@k_lockorder.pint:6",
				"lock-order-cycle@k_lockorder.pint:6",
			},
		},
		{
			Name: "stale-counter-after-fork",
			File: "k_stale.pint",
			Source: `n = 0

t = spawn do
    while n < 1 {
        n = n + 1
    }
end

pid = fork do
    puts(n)
    exit(0)
end
waitpid(pid)
t.join()
`,
			Want: []string{
				`k_stale.pint:10: [stale-state-after-fork] "n" is read in a fork()ed child but updated by a spawned thread (k_stale.pint:5): that thread does not exist in the child, so the value is frozen at whatever it was at fork time (the box64 stale-counter pattern) — reset it in a fork handler`,
			},
			// The staleness is a value bug, not a schedule bug: every
			// interleaving terminates, so the dynamic tools stay silent.
			CheckConvictions: nil,
		},
		{
			Name: "pipe-end-double-close",
			File: "k_doubleclose.pint",
			Source: `ends = pipe_new()
r = ends[0]
w = ends[1]
w.write("once")
w.close()
w.close()
r.close()
`,
			Want: []string{
				`k_doubleclose.pint:6: [pipe-double-close] pipe write end "w" is closed again: every path to this statement has already closed it — on a real kernel the second close() hits a recycled descriptor`,
			},
		},
		{
			Name: "grandchild-fork-tree",
			File: "k_grandchild.pint",
			Source: `q = queue_new()

spawn do
    sleep(0.1)
    q.push(1)
end

fork do
    fork do
        q.pop()
    end
end
`,
			Want: []string{
				`k_grandchild.pint:10: [interthread-queue-across-fork] inter-thread queue "q" is used in code a fork()ed child runs; queue_new() queues are per-process, and the threads feeding this one exist only in the parent (the Listing 5 deadlock) — use mp_queue() across processes [call chain: fork@k_grandchild.pint:8 -> fork@k_grandchild.pint:9]`,
			},
			// Static and dynamic agree on the same rule at the same line:
			// the grandchild's pop deadlocks because the pushing thread
			// exists only in the parent.
			CheckConvictions: []string{
				"deadlock@k_grandchild.pint:10",
				"interthread-queue-across-fork@k_grandchild.pint:10",
			},
		},
		{
			Name: "queue-handshake-deadlock",
			File: "k_chandeadlock.pint",
			Source: `a = queue_new()
b = queue_new()

t = spawn do
    v = a.pop()
    b.push(v)
end

w = b.pop()
a.push(w)
t.join()
`,
			// Invisible to the flow-insensitive static pass; pintcheck
			// proves the circular wait on the very first schedule.
			Want: []string{},
			CheckConvictions: []string{
				"deadlock@k_chandeadlock.pint:5",
				"deadlock@k_chandeadlock.pint:9",
			},
		},
		{
			Name: "queue-handshake-ok",
			File: "k_chan_ok.pint",
			Source: `a = queue_new()
b = queue_new()

t = spawn do
    v = a.pop()
    b.push(v + 1)
end

a.push(41)
w = b.pop()
t.join()
puts(w)
`,
			Want: []string{},
		},
		{
			Name: "fork-storm-pipe-starvation",
			File: "k_forkstorm.pint",
			Source: `ends = pipe_new()
r = ends[0]
w = ends[1]

i = 0
while i < 2 {
    fork do
        w.write(i)
    end
    i += 1
}
r.read()
r.read()
r.read()
`,
			// The third read has no matching write: once both children have
			// exited the parent wedges on a pipe whose write end it still
			// holds itself.
			Want: []string{},
			CheckConvictions: []string{
				"deadlock@k_forkstorm.pint:14",
				"pipe-end-leak@k_forkstorm.pint:14",
			},
			CheckWedges: true,
		},
		{
			Name: "grandchild-tree-lock-cycle",
			File: "k_forktree.pint",
			Source: `m = mutex_new()

func hold_and_fork() {
    m.lock()
    pid = fork do
        gpid = fork do
            m.lock()
            m.unlock()
        end
        waitpid(gpid)
        exit(0)
    end
    m.unlock()
    waitpid(pid)
}

hold_and_fork()
`,
			Want: []string{
				`k_forktree.pint:5: [fork-while-lock-held] fork() while lock "m" may be held: the child inherits a lock whose owner thread does not exist in it (§5.3)`,
			},
			// Statically suspicious, dynamically clean: the kernel's fork
			// handlers re-initialize the inherited mutex in each child, so
			// the grandchild's lock() always succeeds. The conformance test
			// keeps this divergence deliberate.
			CheckConvictions: nil,
		},
		{
			Name: "benign-race-control",
			File: "k_benignrace.pint",
			Source: `n = 0
t = spawn do
    n = n + 1
end
n = n + 1
t.join()
puts(n)
`,
			Want: []string{},
		},
		{
			Name: "lock-order-ok",
			File: "k_lockorder_ok.pint",
			Source: `a = mutex_new()
b = mutex_new()

t = spawn do
    a.lock()
    b.lock()
    b.unlock()
    a.unlock()
end
a.lock()
b.lock()
b.unlock()
a.unlock()
t.join()
`,
			Want: []string{},
		},
		{
			Name: "inherited-write-end-no-eof",
			File: "k_pipeleak.pint",
			Source: `ends = pipe_new()
r = ends[0]
w = ends[1]

pid = fork do
    v = r.read()
    exit(0)
end

w.close()
v = r.read()
waitpid(pid)
`,
			// The child inherits the write end and never closes it, so on
			// schedules where the child's read loses the race the parent's
			// read never sees EOF.
			Want: []string{},
			CheckConvictions: []string{
				"deadlock@k_pipeleak.pint:11",
				"pipe-end-leak@k_pipeleak.pint:11",
				"pipe-end-leak@k_pipeleak.pint:6",
			},
			CheckWedges: true,
		},
		{
			Name: "deep-fork-pipe-chain",
			File: "k_deepchain.pint",
			Source: `ends = pipe_new()
r = ends[0]
w = ends[1]

pid = fork do
    gpid = fork do
        w.write("deep")
        exit(0)
    end
    waitpid(gpid)
    exit(0)
end

v = r.read()
v = r.read()
waitpid(pid)
`,
			// The write that feeds the first read comes from the grandchild,
			// two fork levels down; the second read has no writer left — the
			// parent wedges holding the write end itself (the forkstorm
			// shape, one level deeper).
			Want: []string{},
			CheckConvictions: []string{
				"deadlock@k_deepchain.pint:15",
				"pipe-end-leak@k_deepchain.pint:15",
			},
			CheckWedges: true,
		},
		{
			Name: "sem-cycle-deadlock",
			File: "k_semcycle.pint",
			Source: `a = semaphore_new(0)
b = semaphore_new(0)

t = spawn do
    a.acquire()
    b.release()
end

b.acquire()
a.release()
t.join()
`,
			// Each thread P()s the semaphore the other would V() only after
			// its own P() returns: a circular wait on counters instead of
			// locks. Semaphore waits are externally wakeable, so the
			// in-process detector stays silent and only the wedge oracle
			// convicts.
			Want: []string{},
			CheckConvictions: []string{
				"deadlock@k_semcycle.pint:9",
			},
			CheckWedges: true,
		},
		{
			Name: "sem-pipeline-ok",
			File: "k_sem_ok.pint",
			Source: `s = semaphore_new(0)
done = semaphore_new(0)

t = spawn do
    s.acquire()
    done.release()
end

s.release()
done.acquire()
t.join()
puts("handshake ok")
`,
			// The release each side needs happens before its own acquire:
			// the same shape as sem-cycle-deadlock with the arrows turned
			// around, and clean on every interleaving.
			Want: []string{},
		},
		{
			Name: "mp-queue-workload",
			File: "k_mpwork.pint",
			Source: `q = mp_queue()

func produce() {
    q.put(21)
    exit(0)
}

pid = mp_process(produce)
v = q.get()
waitpid(pid)
puts(v + v)
`,
			// The sanctioned cross-process pattern: an mp_queue (semaphore +
			// pipe + pickle) fed from a forked child via the mp prelude's
			// mp_process. Every tool must stay silent — this is the fix the
			// interthread-queue-across-fork diagnostics prescribe.
			Want:   []string{},
			UsesMP: true,
		},
		{
			Name: "sleeper-threads-ok",
			File: "k_sleepers.pint",
			Source: `t = spawn do
    i = 0
    while i < 2 {
        sleep(0.01)
        i += 1
    }
end
sleep(0.01)
t.join()
puts("rested")
`,
			// Every thread spends its life in timed sleeps — the shape
			// sleep-heavy fuzzed kernels settle into. Clean everywhere, and
			// the core watchdog must never dump it (BenignWait); virtual
			// time makes it cheap to explore despite the waits.
			Want: []string{},
		},
		{
			Name: "grandchild-pipe-relay-ok",
			File: "k_deepchain_ok.pint",
			Source: `ends = pipe_new()
r = ends[0]
w = ends[1]

pid = fork do
    gpid = fork do
        w.write("deep")
        w.close()
        exit(0)
    end
    waitpid(gpid)
    exit(0)
end

w.close()
v = r.read()
puts(v)
waitpid(pid)
`,
			// The fixed deep-fork-pipe-chain: the grandchild closes its
			// write end after the payload, the parent closes its own before
			// reading, and the read matches the single write on every
			// schedule.
			Want: []string{},
		},
	}
}
