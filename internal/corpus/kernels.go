// Concurrency-bug kernels: minimal pint programs, each distilling one
// of the fork-related bug classes to its smallest reproducer, with the
// exact pintvet verdicts they must earn. They are the regression corpus
// for the interprocedural analyzer — every kernel convicts at a known
// line with a known call chain (asserted in kernels_test.go, which runs
// the analyzer; this file deliberately does not import it).

package corpus

// BugKernel is one distilled concurrency bug and its expected verdict.
type BugKernel struct {
	// Name is a stable identifier for the kernel.
	Name string
	// File is the name diagnostics are anchored to.
	File string
	// Source is the pint program.
	Source string
	// Want holds the exact pintvet diagnostics (Diagnostic.String()
	// form, sorted) the analyzer must report for Source.
	Want []string
}

// Kernels returns the bug-kernel corpus in a fixed order.
func Kernels() []BugKernel {
	return []BugKernel{
		{
			Name: "cross-call-fork-while-lock-held",
			File: "k_forklock.pint",
			Source: `func deep_fork() {
    pid = fork do
        puts("orphaned lock in child")
    end
    waitpid(pid)
}

func middle() {
    deep_fork()
}

m = mutex_new()
m.lock()
middle()
m.unlock()
`,
			Want: []string{
				`k_forklock.pint:14: [fork-while-lock-held] call to middle() may fork while lock "m" may be held: the child inherits a lock whose owner thread does not exist in it (§5.3) [call chain: deep_fork@k_forklock.pint:9 -> fork@k_forklock.pint:2]`,
			},
		},
		{
			Name: "lock-order-cycle",
			File: "k_lockorder.pint",
			Source: `a = mutex_new()
b = mutex_new()

func ab() {
    a.lock()
    b.lock()
    b.unlock()
    a.unlock()
}

func ba() {
    b.lock()
    a.lock()
    a.unlock()
    b.unlock()
}

t1 = spawn do ab() end
t2 = spawn do ba() end
t1.join()
t2.join()
`,
			Want: []string{
				`k_lockorder.pint:6: [lock-order-cycle] locks "a", "b" are acquired in inconsistent order ("a" -> "b" at k_lockorder.pint:6, "b" -> "a" at k_lockorder.pint:13): threads interleaving these paths deadlock — impose a single acquisition order`,
			},
		},
		{
			Name: "stale-counter-after-fork",
			File: "k_stale.pint",
			Source: `n = 0
done = false

t = spawn do
    while !done {
        n = n + 1
    }
end

pid = fork do
    puts(n)
    exit(0)
end
waitpid(pid)
done = true
t.join()
`,
			Want: []string{
				`k_stale.pint:11: [stale-state-after-fork] "n" is read in a fork()ed child but updated by a spawned thread (k_stale.pint:6): that thread does not exist in the child, so the value is frozen at whatever it was at fork time (the box64 stale-counter pattern) — reset it in a fork handler`,
			},
		},
		{
			Name: "pipe-end-double-close",
			File: "k_doubleclose.pint",
			Source: `ends = pipe_new()
r = ends[0]
w = ends[1]
w.write("once")
w.close()
w.close()
r.close()
`,
			Want: []string{
				`k_doubleclose.pint:6: [pipe-double-close] pipe write end "w" is closed again: every path to this statement has already closed it — on a real kernel the second close() hits a recycled descriptor`,
			},
		},
		{
			Name: "grandchild-fork-tree",
			File: "k_grandchild.pint",
			Source: `q = queue_new()

func feed() {
    q.push(1)
}

spawn do
    sleep(0.1)
    feed()
end

pid = fork do
    gpid = fork do
        v = q.pop()
        puts(v)
    end
    waitpid(gpid)
end
waitpid(pid)
`,
			Want: []string{
				`k_grandchild.pint:14: [interthread-queue-across-fork] inter-thread queue "q" is used in code a fork()ed child runs; queue_new() queues are per-process, and the threads feeding this one exist only in the parent (the Listing 5 deadlock) — use mp_queue() across processes [call chain: fork@k_grandchild.pint:12 -> fork@k_grandchild.pint:13]`,
			},
		},
	}
}
