// Cross-tool conformance: every kernel in the corpus is judged by all
// three tools, and the verdicts must line up exactly — pintvet's static
// diagnostics (Want), pintcheck's exhaustive convictions
// (CheckConvictions), and pinttrace's single recorded run, whose findings
// must be a subset of what exhaustive exploration proves reachable.
package corpus_test

import (
	"sort"
	"strings"
	"testing"
	"time"

	"dionea/internal/analysis"
	"dionea/internal/bytecode"
	"dionea/internal/check"
	"dionea/internal/corpus"
	"dionea/internal/ipc"
	"dionea/internal/kernel"
	"dionea/internal/mp"
	"dionea/internal/pinttest"
	"dionea/internal/trace"
)

// Every bug kernel must convict statically at its exact line with its
// exact message — call chain included — and nothing else.
func TestKernelsConvictExactly(t *testing.T) {
	opts := analysis.Options{Globals: analysis.RuntimeGlobals()}
	seen := map[string]bool{}
	for _, k := range corpus.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			if seen[k.Name] {
				t.Fatalf("duplicate kernel name %q", k.Name)
			}
			seen[k.Name] = true
			diags, err := analysis.AnalyzeSource(k.Source, k.File, opts)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var got []string
			for _, d := range diags {
				got = append(got, d.String())
			}
			if len(got) != len(k.Want) {
				t.Fatalf("got %d findings, want %d:\ngot:  %q\nwant: %q",
					len(got), len(k.Want), got, k.Want)
			}
			for i := range k.Want {
				if got[i] != k.Want[i] {
					t.Errorf("finding %d:\ngot:  %s\nwant: %s", i, got[i], k.Want[i])
				}
			}
		})
	}
	if len(seen) != 18 {
		t.Fatalf("corpus has %d kernels, want 18", len(seen))
	}
}

// The cross-call kernels must rely on interprocedural facts: each Want
// that crosses a function boundary carries a call chain.
func TestKernelChainsPresent(t *testing.T) {
	chains := 0
	for _, k := range corpus.Kernels() {
		for _, w := range k.Want {
			if strings.Contains(w, "[call chain:") {
				chains++
			}
		}
	}
	if chains < 2 {
		t.Fatalf("only %d kernel verdicts carry call chains; the corpus must exercise cross-call reporting", chains)
	}
}

// Every kernel must exhaust under unbounded exploration and convict
// exactly its CheckConvictions keys, with every witness validated by
// byte-identical re-execution and the wedge expectation met.
func TestKernelsCheckConformance(t *testing.T) {
	for _, k := range corpus.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			proto := pinttest.Compile(t, k.Source, k.File)
			rep, err := check.Explore(proto, check.Options{
				PreemptBound: -1,
				Setup:        []func(*kernel.Process){ipc.Install},
				Preludes:     kernelPreludes(k),
			})
			if err != nil {
				t.Fatalf("explore: %v", err)
			}
			if !rep.Exhausted {
				t.Fatalf("exploration not exhausted after %d runs (truncated=%d diverged=%d)",
					rep.Runs, rep.Truncated, rep.Diverged)
			}
			var got []string
			for _, c := range rep.Convictions {
				got = append(got, c.Key())
				if !c.Validated {
					t.Errorf("conviction %s not validated: witness re-execution did not reproduce the trace", c.Key())
				}
				if len(c.Trace) == 0 || len(c.Schedule) == 0 {
					t.Errorf("conviction %s has an empty witness (trace %d bytes, schedule %d grants)",
						c.Key(), len(c.Trace), len(c.Schedule))
				}
			}
			sort.Strings(got)
			want := append([]string(nil), k.CheckConvictions...)
			sort.Strings(want)
			if !equalStrings(got, want) {
				t.Errorf("convictions mismatch:\ngot:  %q\nwant: %q", got, want)
			}
			if wedged := rep.Wedges > 0; wedged != k.CheckWedges {
				t.Errorf("wedged schedules: got %d, want wedges=%v", rep.Wedges, k.CheckWedges)
			}
		})
	}
}

// One natural recorded run must never find a bug class the exhaustive
// checker misses: the rules pinttrace's analyzer reports on a live
// recording are a subset of the rules pintcheck convicts.
func TestKernelsTraceSubsetOfCheck(t *testing.T) {
	for _, k := range corpus.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			checkRules := map[string]bool{}
			for _, key := range k.CheckConvictions {
				rule, _, ok := strings.Cut(key, "@")
				if !ok {
					t.Fatalf("malformed conviction key %q", key)
				}
				checkRules[rule] = true
			}

			rec := trace.NewRecorder()
			rec.Start()
			res := pinttest.Run(t, k.Source, pinttest.Options{
				Setup:      []func(*kernel.Process){func(p *kernel.Process) { p.K.SetTracer(rec) }},
				Preludes:   kernelPreludes(k),
				Timeout:    3 * time.Second,
				ExpectHang: true,
			})
			if res.Hung {
				pinttest.Terminate(res.Kernel)
			}
			res.Kernel.FlushTrace()
			tr := &trace.Trace{Files: rec.Files(), Chunks: rec.Chunks(), Events: rec.Events()}
			for _, f := range trace.Analyze(tr) {
				if !checkRules[string(f.Rule)] {
					t.Errorf("live recording found [%s] %s, but exhaustive exploration never convicts that rule",
						f.Rule, f.Message)
				}
			}
		})
	}
}

// kernelPreludes returns the library modules a kernel's Source needs.
func kernelPreludes(k corpus.BugKernel) []*bytecode.FuncProto {
	if k.UsesMP {
		return []*bytecode.FuncProto{mp.MustPrelude()}
	}
	return nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
