package corpus_test

import (
	"strings"
	"testing"

	"dionea/internal/analysis"
	"dionea/internal/corpus"
)

// Every bug kernel must convict at its exact line with its exact
// message — call chain included — and nothing else.
func TestKernelsConvictExactly(t *testing.T) {
	opts := analysis.Options{Globals: analysis.RuntimeGlobals()}
	seen := map[string]bool{}
	for _, k := range corpus.Kernels() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			if seen[k.Name] {
				t.Fatalf("duplicate kernel name %q", k.Name)
			}
			seen[k.Name] = true
			diags, err := analysis.AnalyzeSource(k.Source, k.File, opts)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			var got []string
			for _, d := range diags {
				got = append(got, d.String())
			}
			if len(got) != len(k.Want) {
				t.Fatalf("got %d findings, want %d:\ngot:  %q\nwant: %q",
					len(got), len(k.Want), got, k.Want)
			}
			for i := range k.Want {
				if got[i] != k.Want[i] {
					t.Errorf("finding %d:\ngot:  %s\nwant: %s", i, got[i], k.Want[i])
				}
			}
		})
	}
	if len(seen) != 5 {
		t.Fatalf("corpus has %d kernels, want 5", len(seen))
	}
}

// The cross-call kernels must rely on interprocedural facts: each Want
// that crosses a function boundary carries a call chain.
func TestKernelChainsPresent(t *testing.T) {
	chains := 0
	for _, k := range corpus.Kernels() {
		for _, w := range k.Want {
			if strings.Contains(w, "[call chain:") {
				chains++
			}
		}
	}
	if chains < 2 {
		t.Fatalf("only %d kernel verdicts carry call chains; the corpus must exercise cross-call reporting", chains)
	}
}
