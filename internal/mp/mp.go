// Package mp is the multiprocessing library of the simulated platform —
// the analog of Python's multiprocessing package ("Process-based
// 'threading' interface", §6.3) that the paper's MapReduce workload and
// overhead measurements (§7) run on.
//
// Like its Python counterpart, it is written in the interpreted language
// itself and ships as a prelude module: worker processes are created with
// fork, tasks and results travel through mp_queue (semaphore + pipe +
// pickle), and functions are sent by *name* because pickle cannot
// serialize function objects.
package mp

import (
	"sync"

	"dionea/internal/bytecode"
	"dionea/internal/compiler"
)

// Source is the mp prelude, in pint.
//
// API (all functions take/return plain pint values):
//
//	p = mp_process(fn)              fork a child running fn(); returns pid
//	pool = mp_pool(n)               fork n workers
//	out  = mp_pool_map(pool, "fname", items)   parallel map, order-preserving
//	mp_pool_submit(pool, id, "fname", arg)     async submission
//	r    = mp_pool_result(pool)     [id, value] of one completed task
//	mp_pool_close(pool)             send poison pills, reap workers
const Source = `# mp: process-based parallelism (multiprocessing analog)

func mp_process(fn) {
    pid = fork(fn)
    return pid
}

func _mp_worker_loop(tasks, results) {
    while true {
        task = tasks.get()
        if task == nil {
            break
        }
        id = task[0]
        fname = task[1]
        arg = task[2]
        f = resolve(fname)
        r = f(arg)
        results.put([id, r])
    }
}

func mp_pool(nworkers) {
    tasks = mp_queue()
    results = mp_queue()
    pids = []
    for i in range(nworkers) {
        pid = fork do
            _mp_worker_loop(tasks, results)
            exit(0)
        end
        pids.push(pid)
    }
    return {"tasks": tasks, "results": results, "pids": pids, "n": nworkers}
}

func mp_pool_submit(pool, id, fname, arg) {
    pool["tasks"].put([id, fname, arg])
}

func mp_pool_result(pool) {
    return pool["results"].get()
}

func mp_pool_map(pool, fname, items) {
    n = len(items)
    i = 0
    for it in items {
        mp_pool_submit(pool, i, fname, it)
        i += 1
    }
    out = []
    for j in range(n) {
        out.push(nil)
    }
    got = 0
    while got < n {
        r = mp_pool_result(pool)
        out[r[0]] = r[1]
        got += 1
    }
    return out
}

func mp_pool_close(pool) {
    for i in range(pool["n"]) {
        pool["tasks"].put(nil)
    }
    for pid in pool["pids"] {
        waitpid(pid)
    }
}
`

var (
	once  sync.Once
	proto *bytecode.FuncProto
	cerr  error
)

// Prelude returns the compiled mp module (compiled once, shared — compiled
// code is immutable).
func Prelude() (*bytecode.FuncProto, error) {
	once.Do(func() {
		proto, cerr = compiler.CompileSource(Source, "<mp>")
	})
	return proto, cerr
}

// MustPrelude is Prelude for callers where a compile failure is a
// programming error (the source is a constant).
func MustPrelude() *bytecode.FuncProto {
	p, err := Prelude()
	if err != nil {
		panic("mp: prelude does not compile: " + err.Error())
	}
	return p
}
