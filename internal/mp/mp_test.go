package mp_test

import (
	"strings"
	"testing"

	"dionea/internal/bytecode"
	"dionea/internal/mp"
	"dionea/internal/pinttest"
)

func preludes(t testing.TB) []*bytecode.FuncProto {
	t.Helper()
	p, err := mp.Prelude()
	if err != nil {
		t.Fatalf("prelude: %v", err)
	}
	return []*bytecode.FuncProto{p}
}

func TestPreludeCompiles(t *testing.T) {
	if _, err := mp.Prelude(); err != nil {
		t.Fatalf("prelude: %v", err)
	}
}

func TestMPProcess(t *testing.T) {
	r := pinttest.Run(t, `
pid = mp_process(func() {
    print("worker", getpid(), "parent", getppid())
})
code = waitpid(pid)
print("reaped", code)
`, pinttest.Options{Preludes: preludes(t)})
	if !strings.Contains(r.Proc.Output(), "reaped 0") {
		t.Fatalf("output = %q", r.Proc.Output())
	}
	child, ok := r.Kernel.Process(2)
	if !ok || !strings.Contains(child.Output(), "parent 1") {
		t.Fatalf("worker did not run in a child process")
	}
}

func TestPoolMapSquares(t *testing.T) {
	r := pinttest.Run(t, `
func square(x) {
    return x * x
}
pool = mp_pool(4)
out = mp_pool_map(pool, "square", [1, 2, 3, 4, 5, 6, 7, 8])
mp_pool_close(pool)
print(out)
`, pinttest.Options{Preludes: preludes(t)})
	if !strings.Contains(r.Proc.Output(), "[1, 4, 9, 16, 25, 36, 49, 64]") {
		t.Fatalf("output = %q", r.Proc.Output())
	}
}

func TestPoolWorkersAreRealProcesses(t *testing.T) {
	r := pinttest.Run(t, `
func who(x) {
    return getpid()
}
pool = mp_pool(3)
out = mp_pool_map(pool, "who", [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11])
mp_pool_close(pool)
d = {}
for pid in out {
    d[pid] = true
}
if len(d) > 1 {
    print("spread ok")
}
for pid in d.keys() {
    if pid == getpid() {
        print("BUG: task ran in parent")
    }
}
`, pinttest.Options{Preludes: preludes(t)})
	out := r.Proc.Output()
	if strings.Contains(out, "BUG") {
		t.Fatalf("tasks ran in the parent process: %q", out)
	}
	if !strings.Contains(out, "spread ok") {
		t.Logf("tasks all landed on one worker (legal but unusual): %q", out)
	}
}

func TestPoolSubmitAndResultAsync(t *testing.T) {
	r := pinttest.Run(t, `
func double(x) {
    return x + x
}
pool = mp_pool(2)
mp_pool_submit(pool, 100, "double", 21)
r = mp_pool_result(pool)
print("id", r[0], "val", r[1])
mp_pool_close(pool)
`, pinttest.Options{Preludes: preludes(t)})
	if !strings.Contains(r.Proc.Output(), "id 100 val 42") {
		t.Fatalf("output = %q", r.Proc.Output())
	}
}

func TestPoolMapManyTasks(t *testing.T) {
	r := pinttest.Run(t, `
func inc(x) {
    return x + 1
}
items = []
for i in range(16) {
    items.push(i)
}
pool = mp_pool(4)
out = mp_pool_map(pool, "inc", items)
mp_pool_close(pool)
total = 0
for v in out {
    total += v
}
print("total", total)
`, pinttest.Options{Preludes: preludes(t)})
	if !strings.Contains(r.Proc.Output(), "total 136") {
		t.Fatalf("output = %q", r.Proc.Output())
	}
}

func TestPoolMapComplexPayloads(t *testing.T) {
	// Tasks and results are pickled across the queue: exercise nested
	// containers both ways.
	r := pinttest.Run(t, `
func summarize(rec) {
    return {"name": rec["name"], "n": len(rec["vals"])}
}
pool = mp_pool(2)
out = mp_pool_map(pool, "summarize", [
    {"name": "a", "vals": [1, 2, 3]},
    {"name": "b", "vals": []},
])
mp_pool_close(pool)
print(out[0]["name"], out[0]["n"], out[1]["name"], out[1]["n"])
`, pinttest.Options{Preludes: preludes(t)})
	if !strings.Contains(r.Proc.Output(), "a 3 b 0") {
		t.Fatalf("output = %q", r.Proc.Output())
	}
}
