module dionea

go 1.22
