// Satellite of the chaos plane: conn-delay and conn-tear target the debug
// protocol's own TCP connections. The contract is the client's: a delayed
// write may slow a request but never hangs it past its timeout, and a
// torn source channel either reconnects inside the client's 750 ms window
// (announced as session_reconnected) or the session is declared dead —
// cleanly, with every later request failing fast.
package e2e

import (
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dionea/internal/chaos"
	"dionea/internal/client"
	"dionea/internal/compiler"
	"dionea/internal/dionea"
	"dionea/internal/ipc"
	"dionea/internal/kernel"
)

// connConfig isolates one conn point: the point under test keeps its
// default rate, the other lethal conn faults are silenced so the
// contract being tested (delay-only vs tear) is the one that fires.
func connConfig(point chaos.Point) chaos.Config {
	cfg := chaos.DefaultConfig()
	for _, p := range []chaos.Point{chaos.ConnDrop, chaos.ConnDelay, chaos.ConnTear} {
		if p != point {
			cfg.Rates[p] = 0
		}
	}
	return cfg
}

// connSeed finds a seed whose point fires within the first maxN
// occurrences — the request loop below generates far more conn events
// than that, so the fault is guaranteed to land.
func connSeed(t *testing.T, p chaos.Point, maxN uint64) int64 {
	t.Helper()
	for s := int64(1); s < 5000; s++ {
		inj := chaos.NewWith(s, connConfig(p))
		for n := uint64(1); n <= maxN; n++ {
			if inj.WouldFire(p, n) {
				return s
			}
		}
	}
	t.Fatalf("no seed fires %s within %d occurrences", p, maxN)
	return 0
}

func TestConnFaultSurvivability(t *testing.T) {
	if testing.Short() {
		t.Skip("conn-fault e2e is not short")
	}
	cases := []struct {
		name  string
		point chaos.Point
	}{
		{"conn-delay", chaos.ConnDelay},
		{"conn-tear", chaos.ConnTear},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			connFaultOnce(t, tc.point, connSeed(t, tc.point, 8))
		})
	}
}

func connFaultOnce(t *testing.T, point chaos.Point, seed int64) {
	src := soakWordcountSrc()
	proto, err := compiler.CompileSource(src, "wordcount.pint")
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New()
	inj := chaos.NewWith(seed, connConfig(point))
	k.SetChaos(inj)
	session := "connfault-" + point.String() + "-" + strconv.FormatInt(seed, 10)
	var attachErr error
	p := k.StartProgram(proto, kernel.Options{
		Setup: []func(*kernel.Process){
			ipc.Install,
			func(proc *kernel.Process) {
				_, attachErr = dionea.Attach(k, proc, dionea.Options{
					SessionID:     session,
					Sources:       map[string]string{"wordcount.pint": src},
					WaitForClient: true,
				})
			},
		},
	})
	if attachErr != nil {
		t.Fatalf("attach: %v", attachErr)
	}
	c := client.New(k, session)
	if _, err := c.ConnectRoot(p.PID, 10*time.Second); err != nil {
		t.Fatalf("connect: %v", err)
	}

	// Watch for the client's reconnect announcements.
	var reconnects atomic.Int64
	go func() {
		for e := range c.Events() {
			if e.Msg != nil && e.Msg.Cmd == "session_reconnected" {
				reconnects.Add(1)
			}
		}
	}()

	// Release main (best effort: the release itself crosses the faulty
	// plane).
	if infos, terr := c.Threads(p.PID); terr == nil {
		for _, ti := range infos {
			if ti.Main {
				_ = c.Continue(p.PID, ti.TID)
			}
		}
	}

	// Drive enough protocol traffic to reach the chosen occurrence. Every
	// request must return — success or error — within its own timeout;
	// a request that hangs fails the whole test via the outer deadline.
	trafficDone := make(chan struct{})
	go func() {
		defer close(trafficDone)
		for i := 0; i < 60; i++ {
			_, _ = c.Threads(p.PID)
			time.Sleep(10 * time.Millisecond)
		}
	}()
	select {
	case <-trafficDone:
	case <-time.After(60 * time.Second):
		t.Fatal("request loop hung: a conn fault wedged the debug plane")
	}

	if !strings.Contains(inj.Summary(), point.String()+"=") {
		t.Fatalf("seed %d never fired %s: %s", seed, point, inj.Summary())
	}

	// The session survived the faults (possibly via reconnect) or died
	// cleanly — either way this answers promptly.
	start := time.Now()
	_, reqErr := c.Threads(p.PID)
	if d := time.Since(start); d > 15*time.Second {
		t.Fatalf("post-fault request took %v", d)
	}
	if reqErr != nil && point == chaos.ConnDelay && !p.Exited() {
		// Delays alone never kill a live session; only drops/tears may.
		// (A session closed because the debuggee finished is fine.)
		t.Fatalf("session lost to a pure delay: %v", reqErr)
	}
	if reconnects.Load() > 0 {
		t.Logf("%s seed %d: session reconnected %d time(s) within the window",
			point, seed, reconnects.Load())
	}

	// Drain.
	for _, proc := range k.Processes() {
		if !proc.Exited() {
			proc.Terminate(137)
		}
	}
	done := make(chan struct{})
	go func() {
		k.WaitAll()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("kernel did not drain after conn faults")
	}
}
