// Package e2e drives the built command-line binaries as separate OS
// processes, exercising the real cross-process path: dioneas (server +
// debuggee) in one process, dioneac (client) in another, talking over
// loopback TCP with the port handoff through real files.
package e2e

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// binaries builds the CLIs once per test run.
func binaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		binDir, buildErr = os.MkdirTemp("", "dionea-bin")
		if buildErr != nil {
			return
		}
		for _, cmd := range []string{"pint", "pintvet", "pinttrace", "pintcheck", "pintfuzz", "dioneas", "dioneac", "benchfig"} {
			out, err := exec.Command("go", "build", "-o", filepath.Join(binDir, cmd), "dionea/cmd/"+cmd).CombinedOutput()
			if err != nil {
				buildErr = err
				t.Logf("build %s: %s", cmd, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatalf("build: %v", buildErr)
	}
	return binDir
}

func repoPath(t *testing.T, rel string) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("..", rel))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func TestPintRunsPrograms(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pint"), repoPath(t, "testdata/hello.pint")).CombinedOutput()
	if err != nil {
		t.Fatalf("pint: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "hello from child") ||
		!strings.Contains(string(out), "hello from parent") {
		t.Fatalf("output = %s", out)
	}
}

func TestPintMapReduce(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pint"), repoPath(t, "testdata/mapreduce.pint")).CombinedOutput()
	if err != nil {
		t.Fatalf("pint: %v\n%s", err, out)
	}
	for _, want := range []string{"the 3", "fox 2", "dog 2"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPintDisassemble(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pint"), "-disasm", repoPath(t, "testdata/hello.pint")).CombinedOutput()
	if err != nil {
		t.Fatalf("pint -disasm: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "LINE") || !strings.Contains(string(out), "CALL") {
		t.Fatalf("disassembly = %s", out)
	}
}

func TestPintExitCodePropagates(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	prog := filepath.Join(dir, "exit3.pint")
	if err := os.WriteFile(prog, []byte("exit(3)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := exec.Command(filepath.Join(bin, "pint"), prog).Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 3 {
		t.Fatalf("err = %v", err)
	}
}

// TestServerClientAcrossOSProcesses is the full §6.1 workflow: dioneas
// starts a debuggee and waits; dioneac (another OS process) connects,
// sets a breakpoint, inspects, continues.
func TestServerClientAcrossOSProcesses(t *testing.T) {
	bin := binaries(t)
	portDir := t.TempDir()

	srv := exec.Command(filepath.Join(bin, "dioneas"),
		"-session", "e2e", "-portdir", portDir,
		repoPath(t, "testdata/hello.pint"))
	var srvOut bytes.Buffer
	srv.Stdout = &srvOut
	srv.Stderr = &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Process.Kill() }()

	// Wait for the server's port file.
	deadline := time.Now().Add(15 * time.Second)
	for {
		entries, _ := os.ReadDir(portDir)
		if len(entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no port file; server output:\n%s", srvOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Scripted client session. TID 0 = main thread of the active view.
	cli := exec.Command(filepath.Join(bin, "dioneac"),
		"-session", "e2e", "-portdir", portDir, "-pid", "1")
	cli.Stdin = strings.NewReader(strings.Join([]string{
		"threads",
		"break 4 hello.pint", // inside the fork block
		"continue",
		"", // give the breakpoint a beat via an empty command
		"quit",
	}, "\n") + "\n")
	cliOut, err := cli.CombinedOutput()
	if err != nil {
		t.Fatalf("dioneac: %v\n%s", err, cliOut)
	}
	if !strings.Contains(string(cliOut), "(main)") {
		t.Fatalf("threads view missing from client output:\n%s", cliOut)
	}

	// After `quit` the client's sessions drop; the breakpoint in the
	// child stays set but nobody will resume it — kill the server (the
	// point of this test is the cross-process protocol, which has now
	// exercised threads/break/continue).
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case <-done:
		// Server exited: the child hit no breakpoint before the fork
		// block, or completed; either way the handshake worked.
	case <-time.After(5 * time.Second):
		_ = srv.Process.Kill()
		<-done
	}
}

// TestServerClientBreakpointStop drives a full stop-inspect-resume cycle
// across OS processes and asserts the debuggee completes.
func TestServerClientBreakpointStop(t *testing.T) {
	bin := binaries(t)
	portDir := t.TempDir()
	dir := t.TempDir()
	prog := filepath.Join(dir, "count.pint")
	src := `total = 0
for i in range(5) {
    total += i
}
print("total", total)
`
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := exec.Command(filepath.Join(bin, "dioneas"),
		"-session", "e2e2", "-portdir", portDir, prog)
	var srvOut bytes.Buffer
	srv.Stdout = &srvOut
	srv.Stderr = &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Process.Kill() }()

	deadline := time.Now().Add(15 * time.Second)
	for {
		entries, _ := os.ReadDir(portDir)
		if len(entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no port file; server output:\n%s", srvOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The client: conditional breakpoint, continue to it, inspect,
	// continue to completion.
	in := strings.Join([]string{
		"break 3 count.pint if i == 3",
		"continue",
		"eval total", // 0+1+2 = 3 at the stop
		"continue",
		"quit",
	}, "\n") + "\n"
	cli := exec.Command(filepath.Join(bin, "dioneac"),
		"-session", "e2e2", "-portdir", portDir, "-pid", "1")
	cli.Stdin = strings.NewReader(in)
	cliOut, err := cli.CombinedOutput()
	if err != nil {
		t.Fatalf("dioneac: %v\n%s", err, cliOut)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		_ = srv.Process.Kill()
		t.Fatalf("debuggee did not finish.\nclient:\n%s\nserver:\n%s", cliOut, srvOut.String())
	}
	if !strings.Contains(srvOut.String(), "total 10") {
		t.Fatalf("program output missing:\nserver:\n%s\nclient:\n%s", srvOut.String(), cliOut)
	}
	if !strings.Contains(string(cliOut), "stopped (breakpoint)") {
		t.Fatalf("client never saw the stop:\n%s", cliOut)
	}
	if !strings.Contains(string(cliOut), "3") {
		t.Fatalf("eval missing:\n%s", cliOut)
	}
}

func TestBenchfigTable1(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "benchfig"), "-table1").CombinedOutput()
	if err != nil {
		t.Fatalf("benchfig: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Table 1") || !strings.Contains(string(out), "CPU (paper)") {
		t.Fatalf("output = %s", out)
	}
}
