// The broker soak: a full fabric — broker, backend, client — with
// fault injection on BOTH hops (broker↔backend and broker↔client),
// across a spread of seeds. The debuggee may lose, connections may
// drop mid-handshake, events may be shed — all fair — but every
// session must end in a bounded, explicit way: a process_exited, a
// clean session_closed with a reason, a session_reconnected, or an
// events_dropped marker. Never a hang.
package e2e

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"dionea/internal/broker"
	"dionea/internal/chaos"
	"dionea/internal/client"
	"dionea/internal/compiler"
	"dionea/internal/dionea"
	"dionea/internal/ipc"
	"dionea/internal/kernel"
	"dionea/internal/protocol"
)

// brokerSoakSeeds mirrors soakSeeds with its own env knob so the
// verify gate can scale the two soaks independently.
func brokerSoakSeeds(t *testing.T) []int64 {
	n := 5
	if env := os.Getenv("BROKER_SOAK_SEEDS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("BROKER_SOAK_SEEDS=%q", env)
		}
		n = v
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

const brokerSoakSrc = `for i in range(3) {
    pid = fork do
        print("child", i)
    end
    if pid != -1 {
        waitpid(pid)
    }
}
print("soak done")
`

func brokerSoakOnce(t *testing.T, seed int64) {
	proto, err := compiler.CompileSource(brokerSoakSrc, "soak.pint")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}

	bk, err := broker.Start("127.0.0.1:0", broker.Options{
		Chaos:        chaos.New(seed),
		QueueLen:     64,
		PingInterval: 200 * time.Millisecond,
		RehostGrace:  time.Second,
	})
	if err != nil {
		t.Fatalf("seed %d: broker start: %v", seed, err)
	}
	be := dionea.StartBackend(bk.Addr(), dionea.BackendOptions{
		Name:        fmt.Sprintf("soak-be-%d", seed),
		Proto:       proto,
		Sources:     map[string]string{"soak.pint": brokerSoakSrc},
		Setup:       []func(*kernel.Process){ipc.Install},
		Chaos:       chaos.New(seed + 1000),
		RedialFloor: 20 * time.Millisecond,
	})

	// The attach handshake crosses two chaos-wrapped hops, so it may be
	// hit by injected faults; retry until the deadline — a clean error
	// each time is exactly the contract, a hang is not.
	session := "soak-" + strconv.FormatInt(seed, 10)
	// One injector for the whole attach loop: a fresh injector per
	// attempt would replay the identical deterministic fault sequence
	// and fail every retry the same way.
	clientChaos := chaos.New(seed + 2000)
	var c *client.Client
	attachDeadline := time.Now().Add(20 * time.Second)
	for {
		c, err = client.NewBroker(bk.Addr(), session, protocol.RoleController, client.Options{
			Chaos:            clientChaos,
			ReconnectWindow:  2 * time.Second,
			HandshakeTimeout: 3 * time.Second,
		})
		if err == nil {
			break
		}
		if time.Now().After(attachDeadline) {
			t.Fatalf("seed %d: attach never succeeded: %v", seed, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	root := c.Sessions()[0]

	// Release the parked main thread; the request may fail to injected
	// faults — bounded failure is acceptable, and the terminal-signal
	// contract below is only enforced when the release went through.
	released := false
	relDeadline := time.Now().Add(10 * time.Second)
	for !released && time.Now().Before(relDeadline) {
		infos, terr := c.Threads(root)
		if terr != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		for _, ti := range infos {
			if ti.Main {
				if cerr := c.Continue(root, ti.TID); cerr == nil {
					released = true
				}
				break
			}
		}
	}

	// Every session must end in an explicit terminal signal. Reconnects
	// and drop markers may happen along the way; what may not happen is
	// silence past the deadline after a successful release.
	sawReconnect, sawDrops := false, false
	if released {
		_, werr := c.WaitEvent(func(e client.Event) bool {
			switch e.Msg.Cmd {
			case protocol.EventSessionReconnected:
				sawReconnect = true
			case protocol.EventEventsDropped:
				sawDrops = true
			case protocol.EventProcessExited:
				return e.Msg.PID == root
			case protocol.EventSessionClosed:
				return true
			}
			return false
		}, 25*time.Second)
		if werr != nil {
			t.Fatalf("seed %d: no terminal signal after release (reconnects=%v drops=%v): %v",
				seed, sawReconnect, sawDrops, werr)
		}
	} else {
		// The debug plane lost the session before release; it must still
		// answer (with an error or data) rather than hang.
		start := time.Now()
		_, _ = c.Threads(root)
		if time.Since(start) > 15*time.Second {
			t.Fatalf("seed %d: post-loss request took %v", seed, time.Since(start))
		}
	}

	// Teardown of the whole fabric must be bounded — faults must never
	// leave a goroutine holding a lock that Close waits on.
	done := make(chan struct{})
	go func() {
		c.Close()
		be.Close()
		_ = bk.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatalf("seed %d: fabric teardown hung", seed)
	}
}

func TestBrokerChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is not short")
	}
	for _, seed := range brokerSoakSeeds(t) {
		seed := seed
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			brokerSoakOnce(t, seed)
		})
	}
}
