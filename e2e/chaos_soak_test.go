// The chaos soak: run real workloads under the debug plane with fault
// injection on, across a spread of seeds, and require that no injected
// fault hangs the run, panics, or corrupts a surviving session. The
// debuggee itself is allowed to lose — a killed child, a denied fork, a
// dropped pipe write are all fair outcomes — but the debug plane must
// stay answerable and the kernel must always drain.
package e2e

import (
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"dionea/internal/chaos"
	"dionea/internal/client"
	"dionea/internal/compiler"
	"dionea/internal/core"
	"dionea/internal/dionea"
	"dionea/internal/ipc"
	"dionea/internal/kernel"
)

// soakSeeds returns the seeds to soak: 1..5 by default, 1..N with
// CHAOS_SOAK_SEEDS=N (the verify gate uses 20).
func soakSeeds(t *testing.T) []int64 {
	n := 5
	if env := os.Getenv("CHAOS_SOAK_SEEDS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("CHAOS_SOAK_SEEDS=%q", env)
		}
		n = v
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

const (
	soakRunDeadline   = 20 * time.Second // natural completion window
	soakDrainDeadline = 15 * time.Second // kill + drain window
)

// soakOnce runs one compiled workload under a debug client with the
// given chaos seed and enforces the survivability contract.
func soakOnce(t *testing.T, name, src string, seed int64) {
	t.Helper()
	proto, err := compiler.CompileSource(src, name)
	if err != nil {
		t.Fatalf("compile %s: %v", name, err)
	}
	k := kernel.New()
	k.SetChaos(chaos.New(seed))
	// Core dumps ride along: every chaos child-kill (and any deadlock)
	// snapshots the tree mid-soak, so the quiesce path itself is part of
	// the survivability contract — a dump must never hang or tear a run.
	dumper := core.Install(k, t.TempDir())
	session := name + "-" + strconv.FormatInt(seed, 10)
	var attachErr error
	p := k.StartProgram(proto, kernel.Options{
		Setup: []func(*kernel.Process){
			ipc.Install,
			func(proc *kernel.Process) {
				_, attachErr = dionea.Attach(k, proc, dionea.Options{
					SessionID:     session,
					Sources:       map[string]string{name: src},
					WaitForClient: true,
				})
			},
		},
	})
	if attachErr != nil {
		t.Fatalf("seed %d: attach: %v", seed, attachErr)
	}
	c := client.New(k, session)
	if _, err := c.ConnectRoot(p.PID, 10*time.Second); err != nil {
		t.Fatalf("seed %d: connect: %v", seed, err)
	}

	// Release the parked main thread. The request itself crosses the
	// (chaos-wrapped) debug plane, so it may fail — on failure, terminate
	// directly; the run still must drain.
	released := false
	deadline := time.Now().Add(5 * time.Second)
	for !released && time.Now().Before(deadline) {
		infos, terr := c.Threads(p.PID)
		if terr != nil {
			break
		}
		for _, ti := range infos {
			if ti.Main {
				if cerr := c.Continue(p.PID, ti.TID); cerr == nil {
					released = true
				}
				break
			}
		}
	}
	if !released {
		// The debug plane lost the root session to injected conn faults
		// before the program even started; the contract is that nothing
		// hangs, so terminate and drain.
		p.Terminate(137)
	}

	// Let the workload run; it may finish, wedge (pipeleak's bug), or be
	// hollowed out by injected faults — all acceptable, hanging is not.
	select {
	case <-p.ExitChan():
	case <-time.After(soakRunDeadline):
	}

	// Kill/drain: first through the debug plane (it must stay answerable
	// — bounded errors are fine, hangs are not), then directly.
	for _, pid := range c.Sessions() {
		_ = c.Kill(pid) // Request has its own timeout; error is acceptable
	}
	for _, proc := range k.Processes() {
		if !proc.Exited() {
			proc.Terminate(137)
		}
	}
	done := make(chan struct{})
	go func() {
		k.WaitAll()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(soakDrainDeadline):
		t.Fatalf("seed %d: kernel did not drain after kill — an injected fault hung the run", seed)
	}

	// A surviving (or any) session must fail cleanly now, never hang.
	start := time.Now()
	if _, err := c.Threads(p.PID); err == nil && p.Exited() {
		t.Fatalf("seed %d: request on a dead debuggee succeeded", seed)
	}
	if time.Since(start) > 15*time.Second {
		t.Fatalf("seed %d: post-mortem request took %v", seed, time.Since(start))
	}

	// Any core the run dumped must parse — a torn or truncated core means
	// the quiesce failed.
	if path := dumper.LastPath(); path != "" {
		if _, err := core.ReadFile(path); err != nil {
			t.Fatalf("seed %d: dumped core unreadable: %v", seed, err)
		}
	}
}

func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is not short")
	}
	pipeleakSrc, err := os.ReadFile(repoPath(t, "examples/pipeleak/buggy.pint"))
	if err != nil {
		t.Fatalf("read pipeleak: %v", err)
	}
	workloads := []struct{ name, src string }{
		{"wordcount.pint", soakWordcountSrc()},
		{"pipeleak.pint", string(pipeleakSrc)},
	}
	for _, seed := range soakSeeds(t) {
		for _, w := range workloads {
			w := w
			seed := seed
			t.Run(w.name+"/seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
				t.Parallel()
				soakOnce(t, w.name, w.src, seed)
			})
		}
	}
}

// soakWordcountSrc is a self-contained cut of the §7 workload: fork-based
// workers counting words over pipes, no host builtins needed.
func soakWordcountSrc() string {
	corpus := strings.Repeat("the quick brown fox jumps over the lazy dog ", 8)
	return `corpus = "` + strings.TrimSpace(corpus) + `"
words = corpus.split()
nw = 3
pipes = []
pids = []
i = 0
while i < nw {
    pipes.push(pipe_new())
    i = i + 1
}
i = 0
while i < nw {
    ends = pipes[i]
    r = ends[0]
    w = ends[1]
    slot = i
    pid = fork do
        counts = {}
        j = slot
        while j < len(words) {
            word = words[j]
            counts[word] = counts.get(word, 0) + 1
            j = j + nw
        }
        w.write(len(counts.keys()))
        w.close()
    end
    if pid == -1 {
        w.close()
    } else {
        pids.push(pid)
    }
    i = i + 1
}
total = 0
i = 0
while i < nw {
    r = pipes[i][0]
    v = r.read()
    if v != nil {
        total = total + v
    }
    i = i + 1
}
for pd in pids {
    waitpid(pd)
}
print("distinct-sum", total)
` // wordcount-shaped, but every fault outcome (denied fork, killed
	// child, dropped write) still drains: readers see nil on EOF.
}
