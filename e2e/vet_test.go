// End-to-end coverage for the static analyzer: the pintvet binary, the
// pint -vet flag, and the Dionea server replaying findings as static
// hints to a freshly connected client.
package e2e

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestPintvetFlagsDeadlock(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pintvet"), repoPath(t, "testdata/deadlock.pint")).CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1 on findings, got err=%v\n%s", err, out)
	}
	if !strings.Contains(string(out), "deadlock.pint:14: [interthread-queue-across-fork]") {
		t.Fatalf("missing the Listing 5 finding at line 14:\n%s", out)
	}
}

func TestPintvetCleanProgramSilentExitZero(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pintvet"), repoPath(t, "testdata/hello.pint")).CombinedOutput()
	if err != nil {
		t.Fatalf("want exit 0 on clean program, got %v\n%s", err, out)
	}
	if len(out) != 0 {
		t.Fatalf("want no output on clean program, got:\n%s", out)
	}
}

func TestPintvetJSON(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pintvet"), "-json", repoPath(t, "testdata/vet/forklock_bad.pint")).Output()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v", err)
	}
	var findings []struct {
		File string `json:"file"`
		Line int    `json:"line"`
		Rule string `json:"rule"`
	}
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(findings) != 1 || findings[0].Rule != "fork-while-lock-held" || findings[0].Line != 4 {
		t.Fatalf("findings = %+v", findings)
	}
}

// TestPintvetJSONCallChain: a cross-call hazard's JSON finding carries
// the callChain array, frame by frame, from the fork to the hazard.
func TestPintvetJSONCallChain(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pintvet"), "-json", repoPath(t, "testdata/vet/forklock_cross_bad.pint")).Output()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 1 {
		t.Fatalf("want exit 1, got %v", err)
	}
	var findings []struct {
		File  string `json:"file"`
		Line  int    `json:"line"`
		Rule  string `json:"rule"`
		Chain []struct {
			File string `json:"file"`
			Line int    `json:"line"`
			Func string `json:"func"`
		} `json:"callChain"`
	}
	if err := json.Unmarshal(out, &findings); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(findings) != 1 || findings[0].Rule != "fork-while-lock-held" || findings[0].Line != 16 {
		t.Fatalf("findings = %+v", findings)
	}
	chain := findings[0].Chain
	if len(chain) != 2 || chain[0].Func != "do_fork" || chain[1].Func != "fork" || chain[1].Line != 4 {
		t.Fatalf("callChain = %+v, want do_fork then the fork at line 4", chain)
	}
}

// TestPintvetCallGraphListing: -callgraph prints the resolved program
// call graph instead of findings and exits 0 even on a buggy program.
func TestPintvetCallGraphListing(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pintvet"), "-callgraph", repoPath(t, "testdata/vet/forklock_cross_bad.pint")).Output()
	if err != nil {
		t.Fatalf("-callgraph must exit 0, got %v\n%s", err, out)
	}
	for _, want := range []string{"helper", "do_fork", "fork:"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("call-graph listing missing %q:\n%s", want, out)
		}
	}
}

func TestPintvetCompileErrorExitTwo(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	prog := filepath.Join(dir, "broken.pint")
	if err := os.WriteFile(prog, []byte("func {\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := exec.Command(filepath.Join(bin, "pintvet"), prog).Run()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("want exit 2 on compile error, got %v", err)
	}
}

func TestPintVetFlagWarnsAndStillRuns(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pint"), "-vet", repoPath(t, "testdata/vet/forklock_bad.pint")).CombinedOutput()
	if err != nil {
		t.Fatalf("pint -vet: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "pint: vet: forklock_bad.pint:4: [fork-while-lock-held]") {
		t.Fatalf("vet warning missing:\n%s", out)
	}
	// The warning is advisory: the program still ran to completion.
	if !strings.Contains(string(out), "child computes under a lock it can never take") {
		t.Fatalf("program output missing:\n%s", out)
	}
}

// TestStaticHintsArriveOnConnect starts dioneas on the Listing 5
// deadlock program and asserts a connecting dioneac session sees the
// analyzer's hint — while the debuggee is still parked and before any
// breakpoint has been set.
func TestStaticHintsArriveOnConnect(t *testing.T) {
	bin := binaries(t)
	portDir := t.TempDir()

	srv := exec.Command(filepath.Join(bin, "dioneas"),
		"-session", "e2ehints", "-portdir", portDir,
		repoPath(t, "testdata/deadlock.pint"))
	var srvOut bytes.Buffer
	srv.Stdout = &srvOut
	srv.Stderr = &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Process.Kill() }()

	deadline := time.Now().Add(15 * time.Second)
	for {
		entries, _ := os.ReadDir(portDir)
		if len(entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no port file; server output:\n%s", srvOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Drive the client over a pipe: connect, issue no commands at all,
	// give the source channel a beat to deliver events, then quit.
	pr, pw := io.Pipe()
	cli := exec.Command(filepath.Join(bin, "dioneac"),
		"-session", "e2ehints", "-portdir", portDir, "-pid", "1")
	cli.Stdin = pr
	var cliOut bytes.Buffer
	cli.Stdout = &cliOut
	cli.Stderr = &cliOut
	if err := cli.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(1500 * time.Millisecond)
		_, _ = io.WriteString(pw, "quit\n")
		_ = pw.Close()
	}()
	if err := cli.Wait(); err != nil {
		t.Fatalf("dioneac: %v\n%s", err, cliOut.String())
	}

	out := cliOut.String()
	hint := strings.Index(out, "static hint: deadlock.pint:14: [interthread-queue-across-fork]")
	if hint < 0 {
		t.Fatalf("static hint missing from client output:\n%s", out)
	}
	// No breakpoint was ever set; the only stop the client may have seen
	// is the attach-wait park, and the hint must not trail a breakpoint.
	if bp := strings.Index(out, "stopped (breakpoint)"); bp >= 0 && bp < hint {
		t.Fatalf("hint arrived after a breakpoint stop:\n%s", out)
	}
}
