// End-to-end tests of the model checker across real OS processes: the
// pintcheck binary exploring corpus kernels, its emitted witness files
// replayed byte-identically by pint -replay, and pint's -check mode.
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dionea/internal/corpus"
)

// writeKernel materializes a corpus kernel into dir and returns the
// program path.
func writeKernel(t *testing.T, dir, name string) string {
	t.Helper()
	for _, k := range corpus.Kernels() {
		if k.Name == name {
			path := filepath.Join(dir, k.File)
			if err := os.WriteFile(path, []byte(k.Source), 0o644); err != nil {
				t.Fatal(err)
			}
			return path
		}
	}
	t.Fatalf("no corpus kernel named %q", name)
	return ""
}

// TestPintcheckRoundTrip is the check-side acceptance loop, mirroring the
// §6.4 record→analyze→replay shape: pintcheck exhausts the queue-handshake
// deadlock kernel, emits witness schedules, pinttrace convicts each
// witness, and pint -replay re-records every witness byte-identically.
func TestPintcheckRoundTrip(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	prog := writeKernel(t, dir, "queue-handshake-deadlock")
	witDir := filepath.Join(dir, "witness")

	out, err := exec.Command(filepath.Join(bin, "pintcheck"), "-o", witDir, prog).CombinedOutput()
	ee, isExit := err.(*exec.ExitError)
	if !isExit || ee.ExitCode() != 1 {
		t.Fatalf("pintcheck = %v, want convictions (exit 1)\n%s", err, out)
	}
	for _, want := range []string{"[deadlock]", "exhausted", "witness:"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("pintcheck output missing %q:\n%s", want, out)
		}
	}

	witnesses, err := filepath.Glob(filepath.Join(witDir, "*.trc"))
	if err != nil || len(witnesses) == 0 {
		t.Fatalf("no witness files in %s (err %v)", witDir, err)
	}
	for _, w := range witnesses {
		w := w
		t.Run(filepath.Base(w), func(t *testing.T) {
			aout, err := exec.Command(filepath.Join(bin, "pinttrace"), w).CombinedOutput()
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
				t.Fatalf("pinttrace = %v, want findings (exit 1)\n%s", err, aout)
			}
			if !strings.Contains(string(aout), "[deadlock]") {
				t.Fatalf("witness trace does not convict:\n%s", aout)
			}

			// The witness reproduces the deadlock, so the replayed process
			// exits nonzero — the fatal verdict is the point; only a
			// divergence or a differing re-recorded trace is a failure.
			second := w + ".rerecorded"
			rout, err := exec.Command(filepath.Join(bin, "pint"),
				"-replay", w, "-trace", second, prog).CombinedOutput()
			if _, ok := err.(*exec.ExitError); err != nil && !ok {
				t.Fatalf("pint -replay: %v\n%s", err, rout)
			}
			if strings.Contains(string(rout), "replay diverged") {
				t.Fatalf("replay diverged:\n%s", rout)
			}
			a, err := os.ReadFile(w)
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(second)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("re-recorded witness differs from pintcheck's (%d vs %d bytes)", len(a), len(b))
			}
		})
	}
}

// TestPintcheckCleanKernel: an ok-variant must come back clean with exit
// status 0 and an exhausted search.
func TestPintcheckCleanKernel(t *testing.T) {
	bin := binaries(t)
	prog := writeKernel(t, t.TempDir(), "queue-handshake-ok")
	out, err := exec.Command(filepath.Join(bin, "pintcheck"), prog).CombinedOutput()
	if err != nil {
		t.Fatalf("pintcheck = %v, want clean exit\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 convictions") || !strings.Contains(string(out), "exhausted") {
		t.Fatalf("output = %s", out)
	}
}

// TestPintcheckJSON: the -json report parses and carries the exact
// conviction keys the corpus promises for the kernel.
func TestPintcheckJSON(t *testing.T) {
	bin := binaries(t)
	prog := writeKernel(t, t.TempDir(), "queue-handshake-deadlock")
	out, err := exec.Command(filepath.Join(bin, "pintcheck"), "-json", prog).Output()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("pintcheck -json = %v\n%s", err, out)
	}
	var rep struct {
		Runs        int  `json:"runs"`
		Exhausted   bool `json:"exhausted"`
		Convictions []struct {
			Rule string `json:"rule"`
			File string `json:"file"`
			Line int    `json:"line"`
		} `json:"convictions"`
	}
	if err := json.Unmarshal(out, &rep); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if !rep.Exhausted || rep.Runs == 0 {
		t.Fatalf("report = %+v", rep)
	}
	var got []string
	for _, c := range rep.Convictions {
		got = append(got, fmt.Sprintf("%s@%s:%d", c.Rule, c.File, c.Line))
	}
	sort.Strings(got)
	want := []string{"deadlock@k_chandeadlock.pint:5", "deadlock@k_chandeadlock.pint:9"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("convictions = %v, want %v", got, want)
	}
}

// TestPintCheckFlag: `pint -check` model-checks instead of running — exit
// 1 with convictions on stderr for a buggy kernel, exit 0 for a clean
// program.
func TestPintCheckFlag(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()

	buggy := writeKernel(t, dir, "queue-handshake-deadlock")
	out, err := exec.Command(filepath.Join(bin, "pint"), "-check", buggy).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("pint -check = %v, want exit 1\n%s", err, out)
	}
	if !strings.Contains(string(out), "pint: check:") || !strings.Contains(string(out), "[deadlock]") {
		t.Fatalf("output = %s", out)
	}

	clean := filepath.Join(dir, "clean.pint")
	if err := os.WriteFile(clean, []byte("n = 1\nputs(n)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = exec.Command(filepath.Join(bin, "pint"), "-check", clean).CombinedOutput()
	if err != nil {
		t.Fatalf("pint -check clean = %v\n%s", err, out)
	}
}
