package e2e

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestChaosDeterministicFaultTrace runs the same program with the same
// chaos seed twice and requires the recorded fault events to be
// byte-identical — the property that makes a failing soak seed
// reproducible.
func TestChaosDeterministicFaultTrace(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	prog := repoPath(t, "testdata/chaosloop.pint")

	faults := func(run int) string {
		tracePath := filepath.Join(dir, "chaos"+string(rune('0'+run))+".bin")
		out, err := exec.Command(filepath.Join(bin, "pint"),
			"-chaos", "7", "-trace", tracePath, prog).CombinedOutput()
		if err != nil {
			t.Fatalf("pint -chaos: %v\n%s", err, out)
		}
		if !strings.Contains(string(out), "chaos: seed 7") {
			t.Fatalf("no chaos summary on stderr:\n%s", out)
		}
		dump, err := exec.Command(filepath.Join(bin, "pinttrace"), "-dump", tracePath).Output()
		if err != nil {
			t.Fatalf("pinttrace -dump: %v", err)
		}
		var fl []string
		for _, line := range strings.Split(string(dump), "\n") {
			if strings.Contains(line, " fault ") {
				fl = append(fl, line)
			}
		}
		return strings.Join(fl, "\n")
	}

	f1, f2 := faults(1), faults(2)
	if f1 == "" {
		t.Fatalf("seed 7 injected no faults over 8 serialized forks")
	}
	if f1 != f2 {
		t.Fatalf("same seed, different fault events:\n--- run 1:\n%s\n--- run 2:\n%s", f1, f2)
	}
	if !strings.Contains(f1, "point=") {
		t.Fatalf("fault events not rendered symbolically:\n%s", f1)
	}
}

// TestChaosRefusesReplay: injecting new faults on top of a recorded
// schedule would diverge it immediately, so the combination is an error.
func TestChaosRefusesReplay(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pint"),
		"-chaos", "1", "-replay", "nope.bin", repoPath(t, "testdata/hello.pint")).CombinedOutput()
	if err == nil {
		t.Fatalf("pint accepted -chaos with -replay:\n%s", out)
	}
	if !strings.Contains(string(out), "-chaos cannot be combined with -replay") {
		t.Fatalf("wrong diagnostic:\n%s", out)
	}
	_ = os.Remove("nope.bin")
}
