// Post-mortem end-to-end: a chaos child-kill during the wordcount
// workload dumps a core whose content is a pure function of the seed, and
// dioneac -core serves it read-only.
package e2e

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"dionea/internal/chaos"
	"dionea/internal/core"
)

// killCandidates picks seeds whose child-kill point fires on an early
// occurrence with a short fuse, so one of wordcount's three forked
// workers dies mid-count rather than outliving its armed tick.
func killCandidates(t *testing.T) []int64 {
	t.Helper()
	var out []int64
	for s := int64(1); s < 2000 && len(out) < 24; s++ {
		inj := chaos.New(s)
		for n := uint64(1); n <= 3; n++ {
			if inj.WouldFire(chaos.ChildKill, n) && inj.Param(chaos.ChildKill, n, 2, 300) <= 4 {
				out = append(out, s)
				break
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("no candidate seeds fire child-kill with a short fuse")
	}
	return out
}

// runWordcountWithCore runs the soak wordcount under pint -chaos seed with
// a core directory and returns the core it dumps (nil if the armed kill
// never landed — the worker finished first). The run is bounded: a parent
// wedged by its worker's death (it holds its own write ends open, so the
// read never EOFs) is a legitimate outcome the soak also tolerates, and
// the core was already written when the kill landed.
func runWordcountWithCore(t *testing.T, bin string, prog string, seed int64) (string, *core.Core) {
	t.Helper()
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, filepath.Join(bin, "pint"),
		"-chaos", strconv.FormatInt(seed, 10), "-coredir", dir, prog)
	if err := cmd.Start(); err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	done := make(chan struct{})
	go func() { _ = cmd.Wait(); close(done) }()
	defer func() { cancel(); <-done }()

	// Return as soon as a complete core is on disk — no need to sit out a
	// wedged parent's timeout.
	deadline := time.After(12 * time.Second)
	for {
		if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
			path := filepath.Join(dir, entries[0].Name())
			if c, err := core.ReadFile(path); err == nil {
				return path, c
			}
		}
		select {
		case <-done:
			entries, _ := os.ReadDir(dir)
			if len(entries) == 0 {
				return "", nil
			}
			path := filepath.Join(dir, entries[0].Name())
			c, err := core.ReadFile(path)
			if err != nil {
				t.Fatalf("seed %d: core unreadable: %v", seed, err)
			}
			return path, c
		case <-deadline:
			return "", nil
		case <-time.After(50 * time.Millisecond):
		}
	}
}

func TestPostMortemDeterminism(t *testing.T) {
	bin := binaries(t)
	prog := filepath.Join(t.TempDir(), "wordcount.pint")
	if err := os.WriteFile(prog, []byte(soakWordcountSrc()), 0o644); err != nil {
		t.Fatal(err)
	}

	var seed int64
	var path1 string
	var c1 *core.Core
	for _, s := range killCandidates(t) {
		if p, c := runWordcountWithCore(t, bin, prog, s); c != nil {
			seed, path1, c1 = s, p, c
			break
		}
	}
	if c1 == nil {
		t.Fatal("no candidate seed landed a child-kill during wordcount")
	}
	_, c2 := runWordcountWithCore(t, bin, prog, seed)
	if c2 == nil {
		t.Fatalf("seed %d dumped a core on run 1 but not run 2", seed)
	}

	if c1.Trigger != "chaos-kill" {
		t.Fatalf("trigger = %q", c1.Trigger)
	}
	if c1.PID != c2.PID {
		t.Fatalf("different victims across runs: pid %d vs %d", c1.PID, c2.PID)
	}
	// The killed child's snapshot is a pure function of the seed: same
	// thread states, same frames, same lines, same locals, same fds.
	v1, v2 := c1.Proc(c1.PID), c2.Proc(c2.PID)
	if v1 == nil || v2 == nil {
		t.Fatal("victim snapshot missing")
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("same seed, different victim snapshot:\nrun1: %+v\nrun2: %+v", v1, v2)
	}
	if !v1.Quiesced || len(v1.Threads) == 0 || len(v1.Threads[0].Frames) == 0 {
		t.Fatalf("victim snapshot incomplete: %+v", v1)
	}
	fr := v1.Threads[0].Frames[len(v1.Threads[0].Frames)-1]
	if fr.File != "wordcount.pint" || fr.Line <= 0 {
		t.Fatalf("victim frame = %+v", fr)
	}

	// dioneac -core serves the exact thread/line view, scriptably.
	script := "threads\nbacktrace\nframe\nglobals\nquit\n"
	cmd := exec.Command(filepath.Join(bin, "dioneac"), "-core", path1)
	cmd.Stdin = strings.NewReader(script)
	var outBuf bytes.Buffer
	cmd.Stdout = &outBuf
	if err := cmd.Run(); err != nil {
		t.Fatalf("dioneac -core: %v\n%s", err, outBuf.String())
	}
	view := outBuf.String()
	for _, want := range []string{
		"trigger=chaos-kill",
		"chaos-seed=" + strconv.FormatInt(seed, 10),
		"wordcount.pint:" + strconv.FormatInt(fr.Line, 10),
	} {
		if !strings.Contains(view, want) {
			t.Errorf("dioneac -core output missing %q:\n%s", want, view)
		}
	}
}

// TestPostMortemDeadlockView: the Listing-6 style deadlock dumps a core in
// which dioneac -core names the blocked threads and the held locks.
func TestPostMortemDeadlockView(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	prog := filepath.Join(t.TempDir(), "deadlock.pint")
	src := `a = mutex_new()
b = mutex_new()
t1 = spawn do
    a.lock()
    sleep(0.05)
    b.lock()
end
t2 = spawn do
    b.lock()
    sleep(0.05)
    a.lock()
end
t1.join()
t2.join()
`
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ := exec.Command(filepath.Join(bin, "pint"), "-coredir", dir, prog).CombinedOutput()
	if !strings.Contains(string(out), "core dumped:") {
		t.Fatalf("no core-dumped notice:\n%s", out)
	}
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no core files (%v)", err)
	}
	path := filepath.Join(dir, entries[0].Name())

	cmd := exec.Command(filepath.Join(bin, "dioneac"), "-core", path)
	cmd.Stdin = strings.NewReader("waiters\nlocks\nthreads\nquit\n")
	var buf bytes.Buffer
	cmd.Stdout = &buf
	if err := cmd.Run(); err != nil {
		t.Fatalf("dioneac -core: %v\n%s", err, buf.String())
	}
	view := buf.String()
	for _, want := range []string{"trigger=deadlock", "cycle:", "held by thread", "blocked on lock"} {
		if !strings.Contains(view, want) {
			t.Errorf("deadlock post-mortem missing %q:\n%s", want, view)
		}
	}
}
