// Fabric HA end-to-end: the two failure modes the replication and
// migration layers exist for, plus a seeded soak that mixes them.
//
//   - TestBrokerPromotion kills the primary broker mid-session. The
//     standby must promote, the controller must fail over without
//     losing the session, observers must be told (broker_promoted),
//     and the debuggee must still be controllable to completion.
//   - TestSessionMigration moves a stopped session to another backend
//     (checkpoint + restore) and proves it resumes at the same
//     breakpoint, with the fabric views (sessions/stuck) tracking it.
//   - TestFabricHASoak alternates broker-kill and backend-drain across
//     seeds; the contract is zero lost sessions and zero lost critical
//     events — every run must end in the root's process_exited on
//     both the controller and an observer.
package e2e

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"dionea/internal/broker"
	"dionea/internal/chaos"
	"dionea/internal/client"
	"dionea/internal/compiler"
	"dionea/internal/dionea"
	"dionea/internal/ipc"
	"dionea/internal/kernel"
	"dionea/internal/protocol"
)

// haSrc forks once, reaps the child, then crosses line 8 — where the
// tests put their breakpoint — before finishing.
const haSrc = `print("start")
pid = fork do
    print("child")
end
if pid != -1 {
    waitpid(pid)
}
print("after")
print("done")
`

const haBreakLine = 8

// haFabric is one HA fixture: a primary/standby broker pair and
// host-capable backends registered with both.
type haFabric struct {
	prim, stby *broker.Broker
	backends   []*dionea.Backend
	addrs      string
}

func startHAFabric(t *testing.T, tag string, nBackends int) *haFabric {
	t.Helper()
	proto, err := compiler.CompileSource(haSrc, "ha.pint")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	prim, err := broker.Start("127.0.0.1:0", broker.Options{
		Name:         tag + "-bk0",
		PingInterval: 100 * time.Millisecond,
		RehostGrace:  2 * time.Second,
	})
	if err != nil {
		t.Fatalf("primary start: %v", err)
	}
	stby, err := broker.Start("127.0.0.1:0", broker.Options{
		Name:         tag + "-bk1",
		Primary:      prim.Addr(),
		PromoteAfter: 400 * time.Millisecond,
		PingInterval: 100 * time.Millisecond,
		RehostGrace:  2 * time.Second,
	})
	if err != nil {
		t.Fatalf("standby start: %v", err)
	}
	f := &haFabric{prim: prim, stby: stby, addrs: prim.Addr() + "," + stby.Addr()}
	for i := 0; i < nBackends; i++ {
		f.backends = append(f.backends, dionea.StartBackend(f.addrs, dionea.BackendOptions{
			Name:        fmt.Sprintf("%s-be%d", tag, i),
			Proto:       proto,
			Sources:     map[string]string{"ha.pint": haSrc},
			Setup:       []func(*kernel.Process){ipc.Install},
			RedialFloor: 20 * time.Millisecond,
		}))
	}
	return f
}

// teardown closes everything that is still alive, bounded: an HA bug
// must fail the test, not wedge the suite.
func (f *haFabric) teardown(t *testing.T, clients ...*client.Client) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		for _, c := range clients {
			c.Close()
		}
		for _, be := range f.backends {
			be.Close()
		}
		_ = f.prim.Close()
		_ = f.stby.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(20 * time.Second):
		t.Fatalf("fabric teardown hung")
	}
}

func haClientOpts() client.Options {
	return client.Options{
		ReconnectWindow:  15 * time.Second,
		HandshakeTimeout: 3 * time.Second,
	}
}

// attachController attaches with control to the session and parks the
// main thread at haBreakLine. Returns the client, root pid and the
// stopped thread's tid.
func attachController(t *testing.T, addrs, session string) (*client.Client, int64, int64) {
	t.Helper()
	c, err := client.NewBroker(addrs, session, protocol.RoleController, haClientOpts())
	if err != nil {
		t.Fatalf("controller attach: %v", err)
	}
	root := c.Sessions()[0]
	if err := c.SetBreakIf(root, "ha.pint", haBreakLine, ""); err != nil {
		t.Fatalf("set break: %v", err)
	}
	infos, err := c.Threads(root)
	if err != nil {
		t.Fatalf("threads: %v", err)
	}
	released := false
	for _, ti := range infos {
		if ti.Main {
			if err := c.Continue(root, ti.TID); err != nil {
				t.Fatalf("release main: %v", err)
			}
			released = true
		}
	}
	if !released {
		t.Fatalf("no main thread in %v", infos)
	}
	e, err := c.WaitEvent(func(e client.Event) bool {
		return e.Msg.Cmd == protocol.EventStopped && e.Msg.PID == root && e.Msg.Line == haBreakLine
	}, 15*time.Second)
	if err != nil {
		t.Fatalf("never stopped at line %d: %v", haBreakLine, err)
	}
	return c, root, e.Msg.TID
}

func TestBrokerPromotion(t *testing.T) {
	f := startHAFabric(t, "promo", 1)
	c, root, tid := attachController(t, f.addrs, "promo")

	obs, err := client.NewBroker(f.addrs, "promo", protocol.RoleObserver, haClientOpts())
	if err != nil {
		t.Fatalf("observer attach: %v", err)
	}
	defer f.teardown(t, c, obs)

	// The primary dies the hard way: no graceful session_closed fan-out,
	// exactly like the process being killed.
	f.prim.Kill()

	if _, err := c.WaitEvent(func(e client.Event) bool {
		return e.Msg.Cmd == protocol.EventSessionReconnected
	}, 20*time.Second); err != nil {
		t.Fatalf("controller never failed over: %v", err)
	}
	if got := c.Role(); got != protocol.RoleController {
		t.Fatalf("controller lost its role across failover: %q", got)
	}
	if _, err := obs.WaitEvent(func(e client.Event) bool {
		return e.Msg.Cmd == protocol.EventBrokerPromoted
	}, 20*time.Second); err != nil {
		t.Fatalf("observer never told about promotion: %v", err)
	}

	// The session must still be controllable through the promoted
	// standby: resume from the breakpoint and run to completion.
	if err := c.Continue(root, tid); err != nil {
		t.Fatalf("continue after promotion: %v", err)
	}
	for name, cl := range map[string]*client.Client{"controller": c, "observer": obs} {
		if _, err := cl.WaitEvent(func(e client.Event) bool {
			return e.Msg.Cmd == protocol.EventProcessExited && e.Msg.PID == root
		}, 20*time.Second); err != nil {
			t.Fatalf("%s never saw process_exited after promotion: %v", name, err)
		}
	}
}

func TestSessionMigration(t *testing.T) {
	// Migration needs no standby broker — one broker, two backends.
	proto, err := compiler.CompileSource(haSrc, "ha.pint")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	bk, err := broker.Start("127.0.0.1:0", broker.Options{
		Name:         "mig-bk",
		PingInterval: 100 * time.Millisecond,
		RehostGrace:  2 * time.Second,
	})
	if err != nil {
		t.Fatalf("broker start: %v", err)
	}
	var bes []*dionea.Backend
	for i := 0; i < 2; i++ {
		bes = append(bes, dionea.StartBackend(bk.Addr(), dionea.BackendOptions{
			Name:        fmt.Sprintf("mig-be%d", i),
			Proto:       proto,
			Sources:     map[string]string{"ha.pint": haSrc},
			Setup:       []func(*kernel.Process){ipc.Install},
			RedialFloor: 20 * time.Millisecond,
		}))
	}
	c, root, _ := attachController(t, bk.Addr(), "mig")
	defer func() {
		done := make(chan struct{})
		go func() {
			c.Close()
			for _, be := range bes {
				be.Close()
			}
			_ = bk.Close()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("teardown hung")
		}
	}()

	hostOf := func() string {
		rows, err := c.SessionsAll(root)
		if err != nil {
			t.Fatalf("sessions_all: %v", err)
		}
		for _, r := range rows {
			fields := strings.Split(r, "|")
			if len(fields) == 4 && fields[0] == "mig" {
				return fields[1]
			}
		}
		t.Fatalf("session missing from fabric view: %v", rows)
		return ""
	}
	src := hostOf()

	// Broker's choice must land on the other backend; the session is
	// checkpointed at the breakpoint and restored there.
	target, err := c.Migrate(root, "")
	if err != nil {
		t.Fatalf("migrate: %v", err)
	}
	if target == src {
		t.Fatalf("migrated onto the same backend %q", target)
	}
	// The restored tree re-parks at the same breakpoint and announces
	// the stop again before the broker fans session_migrated, so watch
	// for both in one pass — the order is not fixed.
	var stopped *protocol.Msg
	sawMigrated := false
	if _, err := c.WaitEvent(func(e client.Event) bool {
		switch {
		case e.Msg.Cmd == protocol.EventSessionMigrated && e.Msg.Text == target:
			sawMigrated = true
		case e.Msg.Cmd == protocol.EventStopped && e.Msg.Line == haBreakLine:
			stopped = e.Msg
		}
		return sawMigrated && stopped != nil
	}, 15*time.Second); err != nil {
		t.Fatalf("migrated=%v re-parked=%v after migrate: %v", sawMigrated, stopped != nil, err)
	}
	e := client.Event{Msg: stopped}
	if got := hostOf(); got != target {
		t.Fatalf("fabric view says %q, migrate said %q", got, target)
	}

	// Cross-session health must see the restored session as stopped.
	rows, err := c.Stuck(root)
	if err != nil {
		t.Fatalf("stuck: %v", err)
	}
	verdict := ""
	for _, r := range rows {
		fields := strings.Split(r, "|")
		if len(fields) == 5 && fields[0] == target && fields[1] == "mig" {
			verdict = fields[2]
		}
	}
	if verdict != "stopped" {
		t.Fatalf("health verdict for migrated session = %q, want stopped (rows %v)", verdict, rows)
	}

	if err := c.Continue(e.Msg.PID, e.Msg.TID); err != nil {
		t.Fatalf("continue after migration: %v", err)
	}
	if _, err := c.WaitEvent(func(e client.Event) bool {
		return e.Msg.Cmd == protocol.EventProcessExited && e.Msg.PID == root
	}, 20*time.Second); err != nil {
		t.Fatalf("migrated session never finished: %v", err)
	}
}

// haSoakSeeds mirrors the other soak knobs: BROKER_HA_SEEDS scales it.
func haSoakSeeds(t *testing.T) []int64 {
	n := 4
	if env := os.Getenv("BROKER_HA_SEEDS"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v < 1 {
			t.Fatalf("BROKER_HA_SEEDS=%q", env)
		}
		n = v
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

func fabricHAOnce(t *testing.T, seed int64) {
	tag := "hasoak" + strconv.FormatInt(seed, 10)
	f := startHAFabric(t, tag, 2)
	c, root, tid := attachController(t, f.addrs, tag)
	obs, err := client.NewBroker(f.addrs, tag, protocol.RoleObserver, haClientOpts())
	if err != nil {
		t.Fatalf("seed %d: observer attach: %v", seed, err)
	}
	defer f.teardown(t, c, obs)

	if seed%2 == 0 {
		// Backend drain: every session the hosting backend holds must
		// move (checkpoint restore) and re-park at the breakpoint.
		rows, err := c.SessionsAll(root)
		if err != nil {
			t.Fatalf("seed %d: sessions_all: %v", seed, err)
		}
		host := ""
		for _, r := range rows {
			if fields := strings.Split(r, "|"); len(fields) == 4 && fields[0] == tag {
				host = fields[1]
			}
		}
		if host == "" {
			t.Fatalf("seed %d: session not in fabric view: %v", seed, rows)
		}
		if _, err := c.Drain(root, host); err != nil {
			t.Fatalf("seed %d: drain: %v", seed, err)
		}
		e, err := c.WaitEvent(func(e client.Event) bool {
			return e.Msg.Cmd == protocol.EventStopped && e.Msg.Line == haBreakLine
		}, 20*time.Second)
		if err != nil {
			t.Fatalf("seed %d: drained session never re-parked: %v", seed, err)
		}
		if err := c.Continue(e.Msg.PID, e.Msg.TID); err != nil {
			t.Fatalf("seed %d: continue after drain: %v", seed, err)
		}
		// The HA contract: the drained session survives and finishes.
		for name, cl := range map[string]*client.Client{"controller": c, "observer": obs} {
			if _, err := cl.WaitEvent(func(e client.Event) bool {
				return e.Msg.Cmd == protocol.EventProcessExited && e.Msg.PID == root
			}, 25*time.Second); err != nil {
				t.Fatalf("seed %d: %s lost the exit event: %v", seed, name, err)
			}
		}
		return
	}

	// Broker kill, racing the exit: resume first, then kill the primary
	// a beat later — the exit event may be delivered live before the
	// kill or be mid-flight when the broker dies, in which case it must
	// still arrive through the promoted standby's critical-event replay.
	// Either way both facts must reach the observer, in either order.
	if err := c.Continue(root, tid); err != nil {
		t.Fatalf("seed %d: continue: %v", seed, err)
	}
	// The kill time is seeded through the chaos injector's Param so the
	// exit race lands differently per seed (chaos.BrokerKill is a
	// whole-process fault: scheduled here, not fired per-operation).
	inj := chaos.New(seed)
	time.Sleep(time.Duration(inj.Param(chaos.BrokerKill, 0, 0, 50)) * time.Millisecond)
	f.prim.Kill()
	sawPromoted, sawExit := false, false
	if _, err := obs.WaitEvent(func(e client.Event) bool {
		switch {
		case e.Msg.Cmd == protocol.EventBrokerPromoted:
			sawPromoted = true
		case e.Msg.Cmd == protocol.EventProcessExited && e.Msg.PID == root:
			sawExit = true
		}
		return sawPromoted && sawExit
	}, 25*time.Second); err != nil {
		t.Fatalf("seed %d: observer after kill: promoted=%v exit=%v: %v", seed, sawPromoted, sawExit, err)
	}
	if _, err := c.WaitEvent(func(e client.Event) bool {
		return e.Msg.Cmd == protocol.EventProcessExited && e.Msg.PID == root
	}, 25*time.Second); err != nil {
		t.Fatalf("seed %d: controller lost the exit event: %v", seed, err)
	}
}

func TestFabricHASoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak is not short")
	}
	for _, seed := range haSoakSeeds(t) {
		seed := seed
		t.Run("seed"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			fabricHAOnce(t, seed)
		})
	}
}
