// End-to-end tests of the trace subsystem across real OS processes:
// pint -trace / -replay with byte-identical re-recording, and the Dionea
// protocol path (trace start → deadlock → trace dump → pinttrace).
package e2e

import (
	"bytes"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestPintTraceRecordAnalyzeReplay is the CLI acceptance loop: record a
// run of the Listing 5 deadlock, have pinttrace name the exact line, then
// replay the schedule and require the re-recorded trace file to be
// byte-identical to the original.
func TestPintTraceRecordAnalyzeReplay(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	first := filepath.Join(dir, "first.bin")
	second := filepath.Join(dir, "second.bin")
	prog := repoPath(t, "testdata/deadlock.pint")

	out, err := exec.Command(filepath.Join(bin, "pint"), "-trace", first, prog).CombinedOutput()
	if err != nil {
		t.Fatalf("pint -trace: %v\n%s", err, out)
	}

	aout, err := exec.Command(filepath.Join(bin, "pinttrace"), first).CombinedOutput()
	ee, isExit := err.(*exec.ExitError)
	if err != nil && (!isExit || ee.ExitCode() != 1) {
		t.Fatalf("pinttrace: %v\n%s", err, aout)
	}
	if err == nil {
		t.Fatalf("pinttrace found nothing in a deadlocked trace:\n%s", aout)
	}
	for _, want := range []string{
		"deadlock.pint:14", "[deadlock]", "[interthread-queue-across-fork]",
	} {
		if !strings.Contains(string(aout), want) {
			t.Fatalf("pinttrace output missing %q:\n%s", want, aout)
		}
	}

	out, err = exec.Command(filepath.Join(bin, "pint"),
		"-replay", first, "-trace", second, prog).CombinedOutput()
	if err != nil {
		t.Fatalf("pint -replay: %v\n%s", err, out)
	}
	if strings.Contains(string(out), "replay diverged") {
		t.Fatalf("replay diverged:\n%s", out)
	}
	a, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("replayed trace file differs from the recording (%d vs %d bytes)", len(a), len(b))
	}
}

// TestPintTraceDump smoke-tests the human-readable dump mode.
func TestPintTraceDump(t *testing.T) {
	bin := binaries(t)
	dir := t.TempDir()
	tracef := filepath.Join(dir, "t.bin")
	out, err := exec.Command(filepath.Join(bin, "pint"), "-trace", tracef,
		repoPath(t, "testdata/hello.pint")).CombinedOutput()
	if err != nil {
		t.Fatalf("pint -trace: %v\n%s", err, out)
	}
	dump, err := exec.Command(filepath.Join(bin, "pinttrace"), "-dump", tracef).CombinedOutput()
	if err != nil {
		t.Fatalf("pinttrace -dump: %v\n%s", err, dump)
	}
	for _, want := range []string{"gil-acquire", "fork-parent", "fork-child", "proc-exit"} {
		if !strings.Contains(string(dump), want) {
			t.Fatalf("dump missing %q:\n%s", want, dump)
		}
	}
}

// TestDioneaTraceProtocol drives the debugger protocol path across OS
// processes: dioneac issues `trace start`, resumes the program, a forked
// child deadlocks, `trace dump` writes the file, and pinttrace pins the
// deadlock to its source line.
func TestDioneaTraceProtocol(t *testing.T) {
	bin := binaries(t)
	portDir := t.TempDir()
	dir := t.TempDir()
	prog := filepath.Join(dir, "orphanpop.pint")
	// The forked child pops from a queue no other process thread pushes
	// to: a guaranteed Listing 5 deadlock at line 3. The root stays alive
	// on a timer loop so the server outlives the verdict and can serve
	// the dump.
	src := `queue = queue_new()
pid = fork do
    queue.pop()
end
i = 0
while i < 100 {
    i += 1
    sleep(0.1)
}
`
	if err := os.WriteFile(prog, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	srv := exec.Command(filepath.Join(bin, "dioneas"),
		"-session", "e2etrace", "-portdir", portDir, prog)
	var srvOut bytes.Buffer
	srv.Stdout = &srvOut
	srv.Stderr = &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Process.Kill() }()

	deadline := time.Now().Add(15 * time.Second)
	for {
		entries, _ := os.ReadDir(portDir)
		if len(entries) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no port file; server output:\n%s", srvOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	tracef := filepath.Join(dir, "session.bin")
	cli := exec.Command(filepath.Join(bin, "dioneac"),
		"-session", "e2etrace", "-portdir", portDir, "-pid", "1")
	stdin, err := cli.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	var cliOut bytes.Buffer
	cli.Stdout = &cliOut
	cli.Stderr = &cliOut
	if err := cli.Start(); err != nil {
		t.Fatal(err)
	}
	send := func(line string, wait time.Duration) {
		io.WriteString(stdin, line+"\n")
		time.Sleep(wait)
	}
	send("trace start", 200*time.Millisecond)
	send("continue", 3*time.Second) // main runs; the child forks and deadlocks
	send("trace dump "+tracef, 500*time.Millisecond)
	send("quit", 0)
	stdin.Close()
	if err := cli.Wait(); err != nil {
		t.Fatalf("dioneac: %v\n%s", err, cliOut.String())
	}
	for _, want := range []string{"tracing started", "trace written to"} {
		if !strings.Contains(cliOut.String(), want) {
			t.Fatalf("client output missing %q:\n%s\nserver:\n%s", want, cliOut.String(), srvOut.String())
		}
	}

	aout, err := exec.Command(filepath.Join(bin, "pinttrace"), tracef).CombinedOutput()
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("pinttrace = %v, want findings (exit 1)\n%s", err, aout)
	}
	for _, want := range []string{"orphanpop.pint:3", "[deadlock]"} {
		if !strings.Contains(string(aout), want) {
			t.Fatalf("pinttrace output missing %q:\n%s", want, aout)
		}
	}
}

// TestDioneasTraceFlag records from startup via the -trace flag and
// checks the file is written at server exit.
func TestDioneasTraceFlag(t *testing.T) {
	bin := binaries(t)
	portDir := t.TempDir()
	dir := t.TempDir()
	tracef := filepath.Join(dir, "srv.bin")

	srv := exec.Command(filepath.Join(bin, "dioneas"),
		"-session", "e2etraceflag", "-portdir", portDir, "-nowait",
		"-trace", tracef,
		repoPath(t, "testdata/hello.pint"))
	out, err := srv.CombinedOutput()
	if err != nil {
		t.Fatalf("dioneas -trace: %v\n%s", err, out)
	}
	dump, err := exec.Command(filepath.Join(bin, "pinttrace"), "-dump", tracef).CombinedOutput()
	if err != nil {
		t.Fatalf("pinttrace -dump: %v\n%s", err, dump)
	}
	if !strings.Contains(string(dump), "proc-exit") {
		t.Fatalf("server trace has no proc-exit:\n%s", dump)
	}
}
