// End-to-end tests of the fuzzing side: every committed non-wedged
// regression artifact replays byte-identically through the real pint
// binary, and the pintfuzz binary's campaign, verify, and list modes
// work against the real corpus.
package e2e

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"dionea/internal/fuzz"
)

// TestFuzzRegressionReplay is the replayability half of the regression
// contract: for every committed artifact whose witness run completed,
// `pint -replay` re-records the byte-identical trace from the artifact's
// own program text. Wedged artifacts are skipped here — replaying one
// reproduces the hang by design — and covered by the in-process sweep
// (internal/fuzz TestCommittedRegressionsVerify).
func TestFuzzRegressionReplay(t *testing.T) {
	bin := binaries(t)
	regs, err := fuzz.LoadRegressions(repoPath(t, "testdata/fuzz/regressions"))
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) == 0 {
		t.Fatal("no committed fuzz regressions")
	}
	replayable := 0
	for _, reg := range regs {
		if reg.Wedged {
			continue
		}
		replayable++
		reg := reg
		t.Run(reg.Name, func(t *testing.T) {
			dir := t.TempDir()
			// The program must carry the kernel's original file name: the
			// witness trace's file table names it, and the byte compare
			// covers the table.
			prog := filepath.Join(dir, reg.Input.File)
			if err := os.WriteFile(prog, []byte(reg.Source), 0o644); err != nil {
				t.Fatal(err)
			}
			witness := filepath.Join(dir, "witness.trc")
			if err := os.WriteFile(witness, reg.Trace, 0o644); err != nil {
				t.Fatal(err)
			}
			second := filepath.Join(dir, "second.trc")
			out, err := exec.Command(filepath.Join(bin, "pint"),
				"-replay", witness, "-trace", second, prog).CombinedOutput()
			if _, ok := err.(*exec.ExitError); err != nil && !ok {
				t.Fatalf("pint -replay: %v\n%s", err, out)
			}
			if strings.Contains(string(out), "replay diverged") {
				t.Fatalf("replay diverged:\n%s", out)
			}
			rerecorded, err := os.ReadFile(second)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rerecorded, reg.Trace) {
				t.Fatalf("re-recorded trace differs from committed witness (%d vs %d bytes)",
					len(rerecorded), len(reg.Trace))
			}
		})
	}
	if replayable == 0 {
		t.Fatal("every committed regression is wedged; the replay sweep covered nothing")
	}
}

// TestPintfuzzSmoke: a bounded campaign through the real binary must
// rediscover known corpus bugs and say so on stdout.
func TestPintfuzzSmoke(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pintfuzz"),
		"-budget", "80", "-kernel", "lock-order-cycle,queue-handshake-deadlock,sem-cycle-deadlock",
		"-min-known", "3", "-progress=false").CombinedOutput()
	if err != nil {
		t.Fatalf("pintfuzz = %v, want at least 3 known rediscoveries\n%s", err, out)
	}
	if !strings.Contains(string(out), "known") {
		t.Fatalf("pintfuzz output = %s", out)
	}
}

// TestPintfuzzVerifyMode: the binary's -verify mode sweeps the committed
// artifacts and reports zero stale.
func TestPintfuzzVerifyMode(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pintfuzz"),
		"-verify", repoPath(t, "testdata/fuzz/regressions"), "-progress=false").CombinedOutput()
	if err != nil {
		t.Fatalf("pintfuzz -verify = %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "0 stale") {
		t.Fatalf("pintfuzz -verify output = %s", out)
	}
}

// TestPintfuzzList: -list names every corpus kernel.
func TestPintfuzzList(t *testing.T) {
	bin := binaries(t)
	out, err := exec.Command(filepath.Join(bin, "pintfuzz"), "-list").Output()
	if err != nil {
		t.Fatalf("pintfuzz -list = %v", err)
	}
	for _, want := range []string{"lock-order-cycle", "deadlock@k_lockorder.pint:6", "sleeper-threads-ok"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("pintfuzz -list missing %q:\n%s", want, out)
		}
	}
}
